// Package te implements capacity-aware traffic engineering over the
// discovered path sets of a Tango mesh. It models the wide area as a
// set of capacitated links, a demand as a steerable traffic aggregate
// (one site pair and flow class) with a candidate path set, and solves
// for a placement of demand quanta onto paths that minimizes the
// maximum link utilization — the classic MinMaxLinkUtil objective.
//
// The performance core is State: a flat per-link load array with a
// lazily maintained max-utilization tracker. Applying or undoing a
// move (shifting one quantum of demand from one path to another)
// touches only the links on the two paths and allocates nothing, so a
// local-search solver can evaluate millions of candidate moves per
// second. The Solver on top is a seeded Link-Guided Local Search:
// deterministic greedy construction, first-improvement descent guided
// by the most-utilized link, and bounded random restarts — a pure
// function of (topology, demand, seed).
package te

// Link is one capacitated unidirectional resource (in the mesh: one
// direction of a provider trunk). CapacityBps of 0 means uncapacitated:
// the link never contributes to utilization.
type Link struct {
	Name        string
	CapacityBps float64
}

// Demand is one steerable traffic aggregate: RateBps of load that must
// be placed across the candidate Paths, each path a set of link indices
// into the problem's link table. The solver splits the rate into equal
// quanta and assigns each quantum to exactly one path, so the resulting
// per-path weights are multiples of 1/Quanta.
type Demand struct {
	Name    string
	RateBps float64
	Paths   [][]int
}

// Problem is a full placement instance: the capacitated links, the
// demands with their candidate paths, and the quantum resolution.
type Problem struct {
	Links   []Link
	Demands []Demand
	// Quanta is how many equal shares each demand is split into
	// (0 means DefaultQuanta). Higher values allow finer weights at
	// proportionally more solver work.
	Quanta int
}

// quanta returns the effective quantum resolution.
func (p *Problem) quanta() int {
	if p.Quanta <= 0 {
		return DefaultQuanta
	}
	return p.Quanta
}

// State is the incremental utilization tracker: per-link load, inverse
// capacities, and a cached maximum. The cache is maintained eagerly on
// load increases (a new load at or above the cached ceiling is the new
// maximum) and lazily on decreases (removing load from the argmax link
// only marks the cache dirty; the next MaxUtil call rescans). That
// makes ApplyMove/UndoMove O(links on the two paths) with zero
// allocations, while MaxUtil amortizes its rare O(links) rescans over
// the accepted moves that caused them.
type State struct {
	load   []float64
	invCap []float64
	// maxUtil is an upper bound on the true maximum utilization; it is
	// exact (and maxLink its argmax) whenever dirty is false.
	maxUtil float64
	maxLink int
	dirty   bool
}

// NewState builds a zero-load state over the given links.
func NewState(links []Link) *State {
	s := &State{
		load:   make([]float64, len(links)),
		invCap: make([]float64, len(links)),
	}
	for i, l := range links {
		if l.CapacityBps > 0 {
			s.invCap[i] = 1 / l.CapacityBps
		}
	}
	return s
}

// NumLinks returns the number of links tracked.
func (s *State) NumLinks() int { return len(s.load) }

// Load returns the placed load on link i in bits per second.
func (s *State) Load(i int) float64 { return s.load[i] }

// Util returns link i's utilization (load over capacity; 0 when
// uncapacitated).
func (s *State) Util(i int) float64 { return s.load[i] * s.invCap[i] }

// Reset zeroes all load.
func (s *State) Reset() {
	for i := range s.load {
		s.load[i] = 0
	}
	s.maxUtil, s.maxLink, s.dirty = 0, 0, false
}

// Add places bps of load on every link of path. O(len(path)), no
// allocations.
func (s *State) Add(path []int, bps float64) {
	for _, li := range path {
		s.load[li] += bps
		// The cached maximum is an upper bound even when dirty, so any
		// utilization reaching it is the new exact maximum.
		if u := s.load[li] * s.invCap[li]; u >= s.maxUtil {
			s.maxUtil, s.maxLink, s.dirty = u, li, false
		}
	}
}

// Remove takes bps of load off every link of path. O(len(path)), no
// allocations.
func (s *State) Remove(path []int, bps float64) {
	for _, li := range path {
		s.load[li] -= bps
		if li == s.maxLink {
			// The argmax shrank; the cached value stays an upper bound
			// but may no longer be attained.
			s.dirty = true
		}
	}
}

// ApplyMove shifts bps of load from one path to another — the solver's
// elementary step. Cost is O(len(from)+len(to)) with zero allocations;
// links on both paths net out to no change.
func (s *State) ApplyMove(from, to []int, bps float64) {
	s.Remove(from, bps)
	s.Add(to, bps)
}

// UndoMove reverses a previous ApplyMove with the same arguments.
func (s *State) UndoMove(from, to []int, bps float64) {
	s.ApplyMove(to, from, bps)
}

// MaxUtil returns the maximum link utilization and its link index
// (lowest index on exact ties found by a rescan), repairing the lazy
// cache if a removal invalidated it.
func (s *State) MaxUtil() (float64, int) {
	if s.dirty {
		s.rescan()
	}
	return s.maxUtil, s.maxLink
}

func (s *State) rescan() {
	m, ml := 0.0, 0
	for i := range s.load {
		if u := s.load[i] * s.invCap[i]; u > m {
			m, ml = u, i
		}
	}
	s.maxUtil, s.maxLink, s.dirty = m, ml, false
}
