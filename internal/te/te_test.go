package te

import (
	"math"
	"testing"
)

// brute recomputes max utilization from scratch — the oracle the
// incremental tracker is checked against.
func brute(s *State) (float64, int) {
	m, ml := 0.0, 0
	for i := 0; i < s.NumLinks(); i++ {
		if u := s.Util(i); u > m {
			m, ml = u, i
		}
	}
	return m, ml
}

func fourLinks() []Link {
	return []Link{
		{Name: "l0", CapacityBps: 100},
		{Name: "l1", CapacityBps: 200},
		{Name: "l2", CapacityBps: 50},
		{Name: "l3", CapacityBps: 400},
	}
}

func TestStateAddRemoveTracksMax(t *testing.T) {
	s := NewState(fourLinks())
	s.Add([]int{0, 1}, 60)
	if m, ml := s.MaxUtil(); m != 0.6 || ml != 0 {
		t.Fatalf("after add: max %v at %d, want 0.6 at 0", m, ml)
	}
	s.Add([]int{2}, 40)
	if m, ml := s.MaxUtil(); m != 0.8 || ml != 2 {
		t.Fatalf("after second add: max %v at %d, want 0.8 at 2", m, ml)
	}
	// Removing from the argmax marks the cache dirty; MaxUtil must
	// rescan and find the runner-up.
	s.Remove([]int{2}, 40)
	if m, ml := s.MaxUtil(); m != 0.6 || ml != 0 {
		t.Fatalf("after remove: max %v at %d, want 0.6 at 0", m, ml)
	}
	s.Remove([]int{0, 1}, 60)
	if m, _ := s.MaxUtil(); m != 0 {
		t.Fatalf("after removing all: max %v, want 0", m)
	}
}

func TestStateUncapacitatedLinkNeverCounts(t *testing.T) {
	s := NewState([]Link{{CapacityBps: 0}, {CapacityBps: 100}})
	s.Add([]int{0}, 1e12)
	s.Add([]int{1}, 50)
	if m, ml := s.MaxUtil(); m != 0.5 || ml != 1 {
		t.Fatalf("max %v at %d, want 0.5 at 1 (link 0 is uncapacitated)", m, ml)
	}
}

func TestStateApplyUndoRoundTrip(t *testing.T) {
	s := NewState(fourLinks())
	s.Add([]int{0, 1}, 30)
	s.Add([]int{2, 3}, 20)
	wantMax, wantLink := s.MaxUtil()
	loads := make([]float64, s.NumLinks())
	for i := range loads {
		loads[i] = s.Load(i)
	}
	from, to := []int{0, 1}, []int{1, 3} // overlap on link 1 must net out
	s.ApplyMove(from, to, 30)
	if s.Load(0) != 0 || s.Load(1) != 30 || s.Load(3) != 50 {
		t.Fatalf("after move: loads %v %v %v", s.Load(0), s.Load(1), s.Load(3))
	}
	if m, ml := s.MaxUtil(); math.Abs(m-0.4) > 1e-12 || ml != 2 {
		t.Fatalf("after move: max %v at %d, want 0.4 at 2", m, ml)
	}
	s.UndoMove(from, to, 30)
	for i := range loads {
		if math.Abs(s.Load(i)-loads[i]) > 1e-9 {
			t.Fatalf("undo did not restore link %d: %v != %v", i, s.Load(i), loads[i])
		}
	}
	if m, ml := s.MaxUtil(); math.Abs(m-wantMax) > 1e-12 || ml != wantLink {
		t.Fatalf("undo did not restore max: %v at %d, want %v at %d", m, ml, wantMax, wantLink)
	}
}

// TestStateMatchesOracle drives the incremental tracker through a long
// deterministic move sequence and cross-checks the cached maximum
// against a from-scratch recomputation at every step.
func TestStateMatchesOracle(t *testing.T) {
	links := make([]Link, 12)
	for i := range links {
		links[i] = Link{CapacityBps: float64(50 + 13*i)}
	}
	paths := [][]int{{0, 3, 7}, {1, 4}, {2, 5, 8}, {6, 9, 11}, {10, 0}, {4, 8, 10}}
	s := NewState(links)
	rng := uint64(42)
	next := func(n int) int {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return int((z ^ (z >> 31)) % uint64(n))
	}
	for i := 0; i < 2000; i++ {
		from, to := paths[next(len(paths))], paths[next(len(paths))]
		bps := float64(1 + next(40))
		switch next(3) {
		case 0:
			s.Add(to, bps)
		case 1:
			s.ApplyMove(from, to, bps)
		default:
			s.UndoMove(from, to, bps)
		}
		gotM, _ := s.MaxUtil()
		wantM, _ := brute(s)
		if math.Abs(gotM-wantM) > 1e-9 {
			t.Fatalf("step %d: tracker max %v, oracle %v", i, gotM, wantM)
		}
	}
}
