package topo

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
)

// TestFIBFollowsBGP: the AS coupling must install a forwarding route when
// a best path appears, repoint it when the best path changes, and remove
// it on withdrawal.
func TestFIBFollowsBGP(t *testing.T) {
	b := NewBuilder(8)
	col := b.AddAS("col", 10, 1, 0)
	p1 := b.AddAS("p1", 11, 2, 0)
	p2 := b.AddAS("p2", 12, 3, 0)
	dst := b.AddAS("dst", 13, 4, 0)
	b.Wire(col, p1, WireOpts{RelAB: bgp.RelCustomer})
	b.Wire(col, p2, WireOpts{RelAB: bgp.RelCustomer})
	b.Wire(p1, dst, WireOpts{RelAB: bgp.RelCustomer})
	b.Wire(p2, dst, WireOpts{RelAB: bgp.RelCustomer})

	pfx := addr.MustParsePrefix("2001:db8:1::/48")
	probe := netip.MustParseAddr("2001:db8:1::1")

	dst.Speaker.Originate(pfx, bgp.NoExportTo(12)) // only via p1
	b.Eng().Run(b.Eng().Now() + time.Minute)
	ent, _, ok := col.Node.LookupRoute(probe)
	if !ok {
		t.Fatal("no FIB route after best install")
	}
	if ent.Ports[0].Peer() != p1.Node {
		t.Fatalf("FIB points at %s, want p1", ent.Ports[0].Peer().Name())
	}

	// Flip the pin: FIB must repoint to p2.
	dst.Speaker.Originate(pfx, bgp.NoExportTo(11))
	b.Eng().Run(b.Eng().Now() + 3*time.Minute)
	ent, _, ok = col.Node.LookupRoute(probe)
	if !ok {
		t.Fatal("no FIB route after repoint")
	}
	if ent.Ports[0].Peer() != p2.Node {
		t.Fatalf("FIB points at %s, want p2", ent.Ports[0].Peer().Name())
	}

	// Withdraw: FIB entry must vanish.
	dst.Speaker.Withdraw(pfx)
	b.Eng().Run(b.Eng().Now() + 3*time.Minute)
	if _, _, ok := col.Node.LookupRoute(probe); ok {
		t.Fatal("FIB route survived withdrawal")
	}
}

// TestLocallyOriginatedNeedsNoFIB: an AS's own prefixes are delivered
// locally; the coupling must not try to resolve a next hop for them.
func TestLocallyOriginatedNeedsNoFIB(t *testing.T) {
	b := NewBuilder(9)
	a := b.AddAS("a", 10, 1, 0)
	c := b.AddAS("c", 11, 2, 0)
	b.Wire(a, c, WireOpts{RelAB: bgp.RelPeer})
	pfx := addr.MustParsePrefix("2001:db8:9::/48")
	a.Speaker.Originate(pfx) // must not panic in applyBest
	b.Eng().Run(b.Eng().Now() + 30*time.Second)
	if c.Speaker.Best(pfx) == nil {
		t.Fatal("peer did not learn the prefix")
	}
}
