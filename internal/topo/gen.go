package topo

import (
	"fmt"
	"math"
	"sort"
	"time"

	"tango/internal/bgp"
	"tango/internal/sim"
)

// AS-level topology generation (ROADMAP item 1, scenario diversity): a
// seeded generator producing internets of hundreds to thousands of ASes
// with Gao-Rexford business relationships, so the §4.1 discovery loop can
// be measured against topologies whose ground-truth path diversity is
// nontrivial (cf. "BGP-Multipath Routing in the Internet").
//
// The model is the classic three-layer hierarchy:
//
//   - Tier 1: a full settlement-free peering clique — the default-free
//     zone. Every tier-1 reaches every prefix without a provider.
//   - Tier 2: regional transit. Each tier-2 buys transit from one or more
//     providers chosen among the tier-1s and the previously created
//     tier-2s by preferential attachment — the probability of picking a
//     provider grows with its existing customer degree raised to PrefExp,
//     which yields the heavy-tailed (power-law-ish) degree distribution
//     measured AS graphs show. Lateral tier-2 peerings add the shortcut
//     edges real peering fabrics provide.
//   - Sites: stub edge networks (the paper's deployment sites), each
//     multi-homed to MinHoming..MaxHoming transit providers. Sites buy
//     transit only — they never peer and never provide.
//
// Providers are always drawn among strictly earlier-created ASes, so the
// customer→provider digraph is acyclic by construction, and every AS has
// a transit path to the tier-1 clique, so the graph is connected. Both
// invariants are also checked explicitly by the property-test suite.
//
// Everything is drawn from one named stream of sim.Streams(Seed), so a
// graph is a pure function of its GenConfig: equal configs give deeply
// equal graphs (the determinism property test pins this).

// GenConfig parameterizes the AS-graph generator. The zero value is
// invalid; DefaultGenConfig returns a small working baseline.
type GenConfig struct {
	// Seed drives every random draw.
	Seed int64
	// Tier1 is the size of the settlement-free core clique (1..64).
	Tier1 int
	// Tier2 is the number of mid-tier transit ASes (0..4096).
	Tier2 int
	// Sites is the number of stub edge networks (0..50000).
	Sites int
	// MinHoming..MaxHoming bound each site's transit provider count.
	// MaxHoming must not exceed the provider pool (Tier2, or Tier1 when
	// Tier2 is zero).
	MinHoming, MaxHoming int
	// Tier2MaxHoming bounds each tier-2's provider count (1..64); the
	// draw is clamped to the pool available when the AS is created.
	Tier2MaxHoming int
	// PeerLinks is the number of lateral tier-2 peerings to attempt
	// (duplicates of existing adjacencies are skipped, so the realized
	// count may be lower).
	PeerLinks int
	// PrefExp is the preferential-attachment exponent: provider draws are
	// weighted by (1+customers)^PrefExp. 0 is uniform; 1 is linear
	// (Barabási-Albert-like). Must be finite, in [0, 8].
	PrefExp float64
}

// DefaultGenConfig returns a modest valid config: a 3-provider core, a
// handful of regional transits, and n dual-homed sites.
func DefaultGenConfig(seed int64, n int) GenConfig {
	return GenConfig{
		Seed:           seed,
		Tier1:          3,
		Tier2:          8,
		Sites:          n,
		MinHoming:      2,
		MaxHoming:      3,
		Tier2MaxHoming: 2,
		PeerLinks:      4,
		PrefExp:        1.0,
	}
}

// Validate reports whether the config describes a generatable graph. It
// returns an error — never panics — for any out-of-range field, which is
// the contract FuzzGenConfig exercises.
func (c GenConfig) Validate() error {
	if c.Tier1 < 1 || c.Tier1 > 64 {
		return fmt.Errorf("topo: GenConfig.Tier1 %d out of range [1, 64]", c.Tier1)
	}
	if c.Tier2 < 0 || c.Tier2 > 4096 {
		return fmt.Errorf("topo: GenConfig.Tier2 %d out of range [0, 4096]", c.Tier2)
	}
	if c.Sites < 0 || c.Sites > 50000 {
		return fmt.Errorf("topo: GenConfig.Sites %d out of range [0, 50000]", c.Sites)
	}
	if c.Tier2 > 0 && (c.Tier2MaxHoming < 1 || c.Tier2MaxHoming > 64) {
		return fmt.Errorf("topo: GenConfig.Tier2MaxHoming %d out of range [1, 64]", c.Tier2MaxHoming)
	}
	if c.Sites > 0 {
		pool := c.Tier2
		if pool == 0 {
			pool = c.Tier1
		}
		if c.MinHoming < 1 {
			return fmt.Errorf("topo: GenConfig.MinHoming %d must be at least 1", c.MinHoming)
		}
		if c.MaxHoming < c.MinHoming {
			return fmt.Errorf("topo: GenConfig.MaxHoming %d below MinHoming %d", c.MaxHoming, c.MinHoming)
		}
		if c.MaxHoming > pool {
			return fmt.Errorf("topo: GenConfig.MaxHoming %d exceeds provider pool %d", c.MaxHoming, pool)
		}
	}
	if c.PeerLinks < 0 || c.PeerLinks > 100000 {
		return fmt.Errorf("topo: GenConfig.PeerLinks %d out of range [0, 100000]", c.PeerLinks)
	}
	if maxPeer := c.Tier2 * (c.Tier2 - 1) / 2; c.PeerLinks > maxPeer {
		return fmt.Errorf("topo: GenConfig.PeerLinks %d exceeds tier-2 pair count %d", c.PeerLinks, maxPeer)
	}
	if math.IsNaN(c.PrefExp) || math.IsInf(c.PrefExp, 0) || c.PrefExp < 0 || c.PrefExp > 8 {
		return fmt.Errorf("topo: GenConfig.PrefExp %v out of range [0, 8]", c.PrefExp)
	}
	return nil
}

// Tiers of a generated AS.
const (
	GenTier1 = 1 // settlement-free core
	GenTier2 = 2 // regional transit
	GenStub  = 3 // edge site
)

// GenAS is one generated autonomous system.
type GenAS struct {
	Name string
	ASN  bgp.ASN
	Tier int
}

// GenEdge is one inter-AS adjacency. RelAB follows the Wire convention:
// it is what B is to A (RelProvider: B provides transit to A). Delay is
// the symmetric one-way link delay, also used as the BGP session delay.
type GenEdge struct {
	A, B  int
	RelAB bgp.Relation
	Delay time.Duration
}

// ASGraph is a generated AS-level topology.
type ASGraph struct {
	Cfg   GenConfig
	ASes  []GenAS
	Edges []GenEdge
}

// Gen generates the AS graph for cfg. It returns an error for any invalid
// config (it never panics on one), and a graph that is a pure function of
// cfg: calling Gen twice with equal configs yields deeply equal graphs.
func Gen(cfg GenConfig) (*ASGraph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewStreams(cfg.Seed).Stream("topo/gen")
	g := &ASGraph{Cfg: cfg}

	// Tier 1: the core clique, peering all-to-all.
	for i := 0; i < cfg.Tier1; i++ {
		g.ASes = append(g.ASes, GenAS{
			Name: fmt.Sprintf("t1-%02d", i),
			ASN:  bgp.ASN(101 + i),
			Tier: GenTier1,
		})
	}
	for i := 0; i < cfg.Tier1; i++ {
		for j := i + 1; j < cfg.Tier1; j++ {
			g.Edges = append(g.Edges, GenEdge{
				A: i, B: j, RelAB: bgp.RelPeer,
				Delay: time.Duration(10+rng.Intn(31)) * time.Millisecond,
			})
		}
	}

	// custDeg[i] counts transit customers attached to AS i so far — the
	// preferential-attachment weight driver.
	custDeg := make([]int, cfg.Tier1+cfg.Tier2+cfg.Sites)

	// Tier 2: each AS buys transit from earlier-created providers.
	for i := 0; i < cfg.Tier2; i++ {
		idx := cfg.Tier1 + i
		g.ASes = append(g.ASes, GenAS{
			Name: fmt.Sprintf("t2-%04d", i),
			ASN:  bgp.ASN(1001 + i),
			Tier: GenTier2,
		})
		pool := make([]int, idx) // every tier-1 and earlier tier-2
		for p := range pool {
			pool[p] = p
		}
		n := 1 + rng.Intn(cfg.Tier2MaxHoming)
		if n > len(pool) {
			n = len(pool)
		}
		for _, prov := range pickWeighted(rng, pool, custDeg, cfg.PrefExp, n) {
			g.Edges = append(g.Edges, GenEdge{
				A: idx, B: prov, RelAB: bgp.RelProvider,
				Delay: time.Duration(5+rng.Intn(21)) * time.Millisecond,
			})
			custDeg[prov]++
		}
	}

	// Lateral tier-2 peerings: drawn pairs, skipping existing adjacencies
	// (bounded attempts, so degenerate configs terminate instead of
	// spinning — the fuzz target's no-hang contract).
	if cfg.Tier2 > 1 && cfg.PeerLinks > 0 {
		adj := make(map[[2]int]bool, len(g.Edges))
		for _, e := range g.Edges {
			adj[edgeKey(e.A, e.B)] = true
		}
		added := 0
		for attempt := 0; attempt < 20*cfg.PeerLinks && added < cfg.PeerLinks; attempt++ {
			a := cfg.Tier1 + rng.Intn(cfg.Tier2)
			b := cfg.Tier1 + rng.Intn(cfg.Tier2)
			if a == b || adj[edgeKey(a, b)] {
				continue
			}
			adj[edgeKey(a, b)] = true
			g.Edges = append(g.Edges, GenEdge{
				A: a, B: b, RelAB: bgp.RelPeer,
				Delay: time.Duration(5+rng.Intn(26)) * time.Millisecond,
			})
			added++
		}
	}

	// Sites: stub edge networks multi-homed into the transit layer.
	sitePool := make([]int, 0, cfg.Tier2)
	if cfg.Tier2 > 0 {
		for i := 0; i < cfg.Tier2; i++ {
			sitePool = append(sitePool, cfg.Tier1+i)
		}
	} else {
		for i := 0; i < cfg.Tier1; i++ {
			sitePool = append(sitePool, i)
		}
	}
	for i := 0; i < cfg.Sites; i++ {
		idx := cfg.Tier1 + cfg.Tier2 + i
		g.ASes = append(g.ASes, GenAS{
			Name: fmt.Sprintf("st-%05d", i),
			ASN:  bgp.ASN(10001 + i),
			Tier: GenStub,
		})
		n := cfg.MinHoming
		if cfg.MaxHoming > cfg.MinHoming {
			n += rng.Intn(cfg.MaxHoming - cfg.MinHoming + 1)
		}
		for _, prov := range pickWeighted(rng, sitePool, custDeg, cfg.PrefExp, n) {
			g.Edges = append(g.Edges, GenEdge{
				A: idx, B: prov, RelAB: bgp.RelProvider,
				Delay: time.Duration(5+rng.Intn(11)) * time.Millisecond,
			})
			custDeg[prov]++
		}
	}
	return g, nil
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// pickWeighted draws k distinct elements of pool without replacement,
// weighting element i by (1+deg[i])^exp. Sampling removes each pick from
// the candidate set and rescales, so the draw is exact and bounded — no
// rejection loop.
func pickWeighted(rng *sim.RNG, pool []int, deg []int, exp float64, k int) []int {
	if k > len(pool) {
		k = len(pool)
	}
	cand := append([]int(nil), pool...)
	w := make([]float64, len(cand))
	total := 0.0
	for i, p := range cand {
		w[i] = math.Pow(1+float64(deg[p]), exp)
		total += w[i]
	}
	out := make([]int, 0, k)
	for len(out) < k {
		idx := len(cand) - 1
		if total > 0 {
			r := rng.Float64() * total
			for i, wi := range w {
				if r < wi || i == len(cand)-1 {
					idx = i
					break
				}
				r -= wi
			}
		}
		out = append(out, cand[idx])
		total -= w[idx]
		cand = append(cand[:idx], cand[idx+1:]...)
		w = append(w[:idx], w[idx+1:]...)
	}
	return out
}

// Rel returns the relation of b as seen from a (what b is to a), and
// whether the two ASes are adjacent.
func (g *ASGraph) Rel(a, b int) (bgp.Relation, bool) {
	for _, e := range g.Edges {
		if e.A == a && e.B == b {
			return e.RelAB, true
		}
		if e.A == b && e.B == a {
			return invert(e.RelAB), true
		}
	}
	return 0, false
}

// Neighbors returns the adjacency lists of every AS: for each node, the
// (neighbor index, relation-of-neighbor) pairs in edge order.
func (g *ASGraph) Neighbors() [][]GenAdj {
	adj := make([][]GenAdj, len(g.ASes))
	for _, e := range g.Edges {
		adj[e.A] = append(adj[e.A], GenAdj{Peer: e.B, Rel: e.RelAB})
		adj[e.B] = append(adj[e.B], GenAdj{Peer: e.A, Rel: invert(e.RelAB)})
	}
	return adj
}

// GenAdj is one adjacency-list entry: Rel is what Peer is to the owning
// node.
type GenAdj struct {
	Peer int
	Rel  bgp.Relation
}

// Providers returns the indices of a's transit providers, in edge order.
func (g *ASGraph) Providers(a int) []int {
	var out []int
	for _, e := range g.Edges {
		if e.A == a && e.RelAB == bgp.RelProvider {
			out = append(out, e.B)
		}
		if e.B == a && e.RelAB == bgp.RelCustomer {
			out = append(out, e.A)
		}
	}
	return out
}

// Connected reports whether the undirected graph is one component.
func (g *ASGraph) Connected() bool {
	if len(g.ASes) == 0 {
		return true
	}
	adj := g.Neighbors()
	seen := make([]bool, len(g.ASes))
	queue := []int{0}
	seen[0] = true
	visited := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range adj[u] {
			if !seen[a.Peer] {
				seen[a.Peer] = true
				visited++
				queue = append(queue, a.Peer)
			}
		}
	}
	return visited == len(g.ASes)
}

// ProviderAcyclic reports whether the customer→provider digraph has no
// cycle (no AS is, transitively, its own provider).
func (g *ASGraph) ProviderAcyclic() bool {
	up := make([][]int, len(g.ASes)) // customer -> providers
	indeg := make([]int, len(g.ASes))
	for _, e := range g.Edges {
		switch e.RelAB {
		case bgp.RelProvider: // B provides to A
			up[e.A] = append(up[e.A], e.B)
			indeg[e.B]++
		case bgp.RelCustomer: // B is A's customer
			up[e.B] = append(up[e.B], e.A)
			indeg[e.A]++
		}
	}
	// Kahn's algorithm over the reversed digraph (provider -> customer
	// in-degrees): all nodes drain iff acyclic.
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	drained := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		drained++
		for _, p := range up[u] {
			if indeg[p]--; indeg[p] == 0 {
				queue = append(queue, p)
			}
		}
	}
	return drained == len(g.ASes)
}

// ASNIndex maps every ASN to its node index.
func (g *ASGraph) ASNIndex() map[bgp.ASN]int {
	m := make(map[bgp.ASN]int, len(g.ASes))
	for i, a := range g.ASes {
		m[a.ASN] = i
	}
	return m
}

// ValleyFreeProviders returns, sorted, the ASNs of dst's transit
// providers through which a valley-free route announced by dst can reach
// src — the §4.1 discovery loop's ground truth: each round's observed
// adjacent provider must come from this set, and a fully converged loop
// discovers all of it.
//
// Reachability per provider is a two-state BFS over the export rules:
// state "permissive" (the route was originated or learned from a
// customer; exportable to everyone) and state "restricted" (learned from
// a peer or provider; exportable only to customers). Gao-Rexford
// preference makes customer-learned routes win selection, so a node that
// *can* hold a route in the permissive state exports with permissive
// power — the BFS over (node, state) with permissive dominance is exact
// for steady-state reachability.
func (g *ASGraph) ValleyFreeProviders(dst, src int) []bgp.ASN {
	adj := g.Neighbors()
	var out []bgp.ASN
	for _, prov := range g.Providers(dst) {
		if g.reachableVia(adj, dst, prov, src) {
			out = append(out, g.ASes[prov].ASN)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// reachableVia reports whether the announcement dst hands to its provider
// entry can propagate to src under valley-free export, never transiting
// dst itself.
func (g *ASGraph) reachableVia(adj [][]GenAdj, dst, entry, src int) bool {
	if entry == src {
		return true
	}
	const (
		restricted = 0
		permissive = 1
	)
	seen := make([][2]bool, len(g.ASes))
	// The entry provider learned the route from its customer dst.
	seen[entry][permissive] = true
	type item struct{ node, state int }
	queue := []item{{entry, permissive}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, a := range adj[it.node] {
			if a.Peer == dst {
				continue
			}
			// Export rule: permissive routes go everywhere; restricted
			// routes only to customers.
			if it.state == restricted && a.Rel != bgp.RelCustomer {
				continue
			}
			// Import state at the neighbor: permissive iff it learned the
			// route from one of its customers (we are its customer iff it
			// is our provider).
			ns := restricted
			if a.Rel == bgp.RelProvider {
				ns = permissive
			}
			if seen[a.Peer][ns] {
				continue
			}
			seen[a.Peer][ns] = true
			if a.Peer == src {
				return true
			}
			queue = append(queue, item{a.Peer, ns})
		}
	}
	return false
}

// ValleyFreePaths enumerates simple valley-free AS paths from src to dst
// (observed-path orientation: element 0 is src, the last element is dst),
// in deterministic DFS order, bounded by maxLen hops and maxPaths
// results. The golden-file test pins these sets for a small seeded graph.
func (g *ASGraph) ValleyFreePaths(dst, src, maxLen, maxPaths int) [][]bgp.ASN {
	adj := g.Neighbors()
	var out [][]bgp.ASN
	onPath := make([]bool, len(g.ASes))
	path := []int{dst}
	onPath[dst] = true
	var dfs func(node, state int)
	const (
		restricted = 0
		permissive = 1
	)
	dfs = func(node, state int) {
		if len(out) >= maxPaths {
			return
		}
		if node == src {
			// The announcement walked dst→…→src; the observed AS path at
			// src reads src-nearest first.
			p := make([]bgp.ASN, len(path))
			for i, n := range path {
				p[len(path)-1-i] = g.ASes[n].ASN
			}
			out = append(out, p)
			return
		}
		if len(path) > maxLen {
			return
		}
		// Deterministic neighbor order: ascending node index.
		next := append([]GenAdj(nil), adj[node]...)
		sort.Slice(next, func(i, j int) bool { return next[i].Peer < next[j].Peer })
		for _, a := range next {
			if onPath[a.Peer] {
				continue
			}
			if state == restricted && a.Rel != bgp.RelCustomer {
				continue
			}
			ns := restricted
			if a.Rel == bgp.RelProvider {
				ns = permissive
			}
			onPath[a.Peer] = true
			path = append(path, a.Peer)
			dfs(a.Peer, ns)
			path = path[:len(path)-1]
			onPath[a.Peer] = false
		}
	}
	dfs(dst, permissive)
	return out
}

// ValleyFreeObserved reports whether an AS path observed at a speaker is
// valley-free under the graph's relationships. The path is in wire order:
// element 0 is the last prepender (nearest the observer), the last
// element is the origin. Consecutive duplicates (prepending) are skipped;
// ASNs outside the graph (unstripped private edge ASNs) fail the check.
//
// When observer names a graph AS, the final import hop into the observer
// is checked too; pass 0 for an off-graph observer (a Tango edge server
// speaking from a private ASN behind a site).
func (g *ASGraph) ValleyFreeObserved(observer bgp.ASN, path bgp.Path) bool {
	idx := g.ASNIndex()
	// Collapse the wire path to the distinct AS chain, observer-nearest
	// first, and resolve every hop to a graph node.
	var chain []int
	if observer != 0 {
		o, ok := idx[observer]
		if !ok {
			return false
		}
		chain = append(chain, o)
	}
	for _, a := range path {
		n, ok := idx[a]
		if !ok {
			return false
		}
		if len(chain) > 0 && chain[len(chain)-1] == n {
			continue // prepending
		}
		chain = append(chain, n)
	}
	if len(chain) < 2 {
		return true
	}
	// Walk in announcement direction: origin (end) toward observer
	// (front). The origin holds the route permissively (it originated it,
	// or — for a site fronting a Tango edge — learned it from a
	// customer).
	permissive := true
	for i := len(chain) - 1; i > 0; i-- {
		exporter, importer := chain[i], chain[i-1]
		rel, ok := g.Rel(exporter, importer) // what importer is to exporter
		if !ok {
			return false // hop without an adjacency
		}
		if !permissive && rel != bgp.RelCustomer {
			return false // restricted route exported beyond customers
		}
		// State after import: permissive iff the importer heard it from
		// its own customer, i.e. the exporter is the importer's customer.
		permissive = rel == bgp.RelProvider
	}
	return true
}
