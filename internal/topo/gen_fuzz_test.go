package topo

// Fuzz target for generator config validation (the companion of the
// bgp codec fuzzers): arbitrary field values must either be rejected by
// Validate with an error or generate a structurally sound graph —
// never panic, and never hang. Run it locally with
//
//	go test -fuzz FuzzGenConfig ./internal/topo
//
// CI's fuzz-smoke job gives it a fixed budget on every push.

import "testing"

func FuzzGenConfig(f *testing.F) {
	f.Add(int64(1), 3, 8, 16, 2, 3, 2, 4, 1.0)              // a healthy baseline
	f.Add(int64(42), 1, 0, 0, 0, 0, 0, 0, 0.0)              // core-only minimum
	f.Add(int64(7), 64, 4096, 50000, 1, 4, 64, 100000, 8.0) // every cap at once
	f.Add(int64(-3), 0, -1, -5, 3, 2, -2, -7, -1.5)         // nonsense everywhere
	f.Fuzz(func(t *testing.T, seed int64, tier1, tier2, sites, minH, maxH, t2max, peers int, prefExp float64) {
		cfg := GenConfig{
			Seed:           seed,
			Tier1:          tier1,
			Tier2:          tier2,
			Sites:          sites,
			MinHoming:      minH,
			MaxHoming:      maxH,
			Tier2MaxHoming: t2max,
			PeerLinks:      peers,
			PrefExp:        prefExp,
		}
		err := cfg.Validate()
		if err != nil {
			// Invalid configs must also be refused by Gen, symmetrically.
			if _, genErr := Gen(cfg); genErr == nil {
				t.Fatalf("Validate rejected %+v but Gen accepted it", cfg)
			}
			return
		}
		// Valid configs at the extreme caps can describe graphs with
		// hundreds of thousands of adjacencies; generating those is
		// legitimate but too slow for a fuzz budget, so bound the work
		// and leave the full-size path to the scale experiments.
		if work := tier1*tier1 + tier2*t2max + sites*maxH + peers; work > 50000 {
			t.Skip("structurally valid but beyond the fuzz work budget")
		}
		g, err := Gen(cfg)
		if err != nil {
			t.Fatalf("Gen rejected a validated config %+v: %v", cfg, err)
		}
		if want := tier1 + tier2 + sites; len(g.ASes) != want {
			t.Fatalf("%d ASes, want %d", len(g.ASes), want)
		}
		if !g.Connected() {
			t.Fatalf("generated graph is disconnected: %+v", cfg)
		}
		if !g.ProviderAcyclic() {
			t.Fatalf("generated provider digraph is cyclic: %+v", cfg)
		}
		if len(g.ASNIndex()) != len(g.ASes) {
			t.Fatalf("generated graph reuses ASNs: %+v", cfg)
		}
	})
}
