package topo

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tango/internal/bgp"
)

var updateGenGolden = flag.Bool("update-gen-golden", false, "rewrite the generator golden file")

// TestGenGolden pins one small seeded topology — its ASes, its
// relationships, and the valley-free ground truth (provider sets and
// full path sets) for three site pairs — so a policy or generator
// refactor that changes selection behavior fails loudly instead of
// silently shifting every experiment's baseline. Regenerate with
//
//	go test ./internal/topo -run TestGenGolden -update-gen-golden
//
// and review the diff like any other behavior change.
func TestGenGolden(t *testing.T) {
	cfg := GenConfig{
		Seed:           42,
		Tier1:          3,
		Tier2:          5,
		Sites:          6,
		MinHoming:      2,
		MaxHoming:      3,
		Tier2MaxHoming: 2,
		PeerLinks:      2,
		PrefExp:        1.0,
	}
	g, err := Gen(cfg)
	if err != nil {
		t.Fatalf("Gen: %v", err)
	}

	type goldenEdge struct {
		A, B    string
		Rel     string // what B is to A
		DelayNS int64  `json:"delay_ns"`
	}
	type goldenPair struct {
		Src, Dst  string
		Providers []bgp.ASN   // valley-free ground truth, ascending
		Paths     [][]bgp.ASN // every simple valley-free path, DFS order
	}
	type golden struct {
		ASes  []GenAS
		Edges []goldenEdge
		Pairs []goldenPair
	}

	relName := map[bgp.Relation]string{
		bgp.RelCustomer: "customer",
		bgp.RelPeer:     "peer",
		bgp.RelProvider: "provider",
	}
	out := golden{ASes: g.ASes}
	for _, e := range g.Edges {
		out.Edges = append(out.Edges, goldenEdge{
			A: g.ASes[e.A].Name, B: g.ASes[e.B].Name,
			Rel: relName[e.RelAB], DelayNS: int64(e.Delay),
		})
	}
	stub := cfg.Tier1 + cfg.Tier2
	for _, pr := range [][2]int{{stub, stub + 1}, {stub + 2, stub + 5}, {stub + 4, stub}} {
		src, dst := pr[0], pr[1]
		out.Pairs = append(out.Pairs, goldenPair{
			Src:       g.ASes[src].Name,
			Dst:       g.ASes[dst].Name,
			Providers: g.ValleyFreeProviders(dst, src),
			Paths:     g.ValleyFreePaths(dst, src, 8, 64),
		})
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')

	path := filepath.Join("testdata", "gen_golden.json")
	if *updateGenGolden {
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-gen-golden to create): %v", err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("generated topology diverged from the pinned golden file\n"+
			"got:\n%s\nwant:\n%s\n(rerun with -update-gen-golden only if the change is intended)",
			firstDiffContext(buf, want), firstDiffContext(want, buf))
	}
}

// firstDiffContext returns a short window around the first differing byte.
func firstDiffContext(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 120
	if lo < 0 {
		lo = 0
	}
	hi := i + 120
	if hi > len(a) {
		hi = len(a)
	}
	return fmt.Sprintf("...byte %d: %q...", i, a[lo:hi])
}
