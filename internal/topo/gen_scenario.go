package topo

import (
	"fmt"
	"sort"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
	"tango/internal/simnet"
)

// Generated-internet scenario: instantiates an ASGraph as a running
// simulation — one speaker+node per AS, every adjacency wired in both
// planes with the graph's delay — and deploys a Tango edge server behind
// each requested site, the way the mesh scenarios put edge servers behind
// their POPs. Sites play the POP role: their provider-facing sessions
// strip the edge's private ASN and scrub action communities, so the
// paper's discovery knob (64600:<asn>) is interpreted exactly once, by
// the site the probe enters the transit core through.

const (
	genEdgeLinkDelay    = 200 * time.Microsecond
	genEdgeSessionDelay = time.Millisecond
)

// GenScenarioConfig parameterizes NewGenScenario.
type GenScenarioConfig struct {
	// Graph generates the AS-level topology.
	Graph GenConfig
	// Shards, when positive, builds the simulation over a partitioned
	// network with that many worker goroutines. The layout is a function
	// of the graph only (see GenPartition). Discovery sweeps drive the
	// coordinator in coupled mode — the Discoverer's round callbacks read
	// the observer's RIB across partitions, which parallel epochs forbid
	// — so Shards changes construction, never event order.
	Shards int
	// EdgeSites lists the site indices (into the graph's node order) that
	// get a Tango edge server. At most 800 (private edge ASNs are carved
	// from 64701 up).
	EdgeSites []int
	// MRAI paces the transit sessions (default 2 s; the edge-to-site
	// sessions run at 1 s like the mesh scenarios).
	MRAI time.Duration
}

// GenScenario is a built generated internet.
type GenScenario struct {
	B *Builder
	G *ASGraph
	// ASes indexes the built ASes exactly like the graph's node order.
	ASes []*AS
	// Edges and Hosts map a site index to its Tango edge server and the
	// host prefix it originates.
	Edges map[int]*AS
	Hosts map[int]addr.Prefix
	// EdgeSites is the deduplicated, ascending site list actually built.
	EdgeSites []int
	// Layout is the partition layout (zero value when Shards == 0).
	Layout Partition

	probeBase addr.Prefix
}

func edgeNodeName(site GenAS) string { return "ex-" + site.Name }

// GenPartition derives the partition graph of a generated scenario
// without building it: every AS plus every edge server, with each
// adjacency's floor set by its link delay (the session delay equals the
// link delay, so the same floor bounds both planes). Generated transit
// delays are all >= 5 ms, so every AS lands in its own partition and the
// edge servers (200 µs links, below the cut floor) glue to their sites.
func GenPartition(g *ASGraph, edgeSites []int) Partition {
	nodes := make([]string, 0, len(g.ASes)+len(edgeSites))
	for _, a := range g.ASes {
		nodes = append(nodes, a.Name)
	}
	edges := make([]PartEdge, 0, len(g.Edges)+len(edgeSites))
	for _, e := range g.Edges {
		edges = append(edges, PartEdge{
			A: g.ASes[e.A].Name, B: g.ASes[e.B].Name,
			MinDelayAB: e.Delay, MinDelayBA: e.Delay,
		})
	}
	for _, s := range edgeSites {
		name := edgeNodeName(g.ASes[s])
		nodes = append(nodes, name)
		d := min(genEdgeLinkDelay, genEdgeSessionDelay)
		edges = append(edges, PartEdge{A: name, B: g.ASes[s].Name, MinDelayAB: d, MinDelayBA: d})
	}
	return PartitionGraph(g.Cfg.Seed, nodes, edges, 0, 0)
}

// NewGenScenario generates the graph and builds it as a simulation.
func NewGenScenario(cfg GenScenarioConfig) (*GenScenario, error) {
	g, err := Gen(cfg.Graph)
	if err != nil {
		return nil, err
	}
	sites := append([]int(nil), cfg.EdgeSites...)
	sort.Ints(sites)
	sites = dedupInts(sites)
	if len(sites) > 800 {
		return nil, fmt.Errorf("topo: %d edge sites exceed the 800 private-ASN budget", len(sites))
	}
	stubBase := cfg.Graph.Tier1 + cfg.Graph.Tier2
	for _, s := range sites {
		if s < stubBase || s >= len(g.ASes) {
			return nil, fmt.Errorf("topo: edge site index %d is not a stub site (want [%d, %d))",
				s, stubBase, len(g.ASes))
		}
	}
	mrai := cfg.MRAI
	if mrai == 0 {
		mrai = 2 * time.Second
	}

	var b *Builder
	var layout Partition
	if cfg.Shards > 0 {
		layout = GenPartition(g, sites)
		b = NewShardedBuilder(cfg.Graph.Seed, layout)
		b.W.Coord().SetWorkers(cfg.Shards)
	} else {
		b = NewBuilder(cfg.Graph.Seed)
	}
	m := &GenScenario{
		B: b, G: g,
		Edges: map[int]*AS{}, Hosts: map[int]addr.Prefix{},
		EdgeSites: sites,
		Layout:    layout,
		probeBase: addr.MustParsePrefix("2001:db8:9000::/36"),
	}
	for i, a := range g.ASes {
		m.ASes = append(m.ASes, b.AddAS(a.Name, a.ASN, uint32(1+i), 0))
	}
	for _, e := range g.Edges {
		o := WireOpts{
			RelAB:        e.RelAB,
			DelayAB:      simnet.FixedDelay(e.Delay),
			DelayBA:      simnet.FixedDelay(e.Delay),
			SessionDelay: e.Delay,
			MRAI:         mrai,
		}
		if g.ASes[e.A].Tier == GenStub && e.RelAB == bgp.RelProvider {
			// The site is the probe's POP: strip the tenant edge's private
			// ASN and apply-then-scrub its action communities on the way
			// into the core.
			o.StripPrivateA2B = true
			o.ScrubA2B = true
		}
		b.Wire(m.ASes[e.A], m.ASes[e.B], o)
	}

	hostBase := addr.MustParsePrefix("2001:db8:8000::/36")
	dc := simnet.FixedDelay(genEdgeLinkDelay)
	for k, s := range sites {
		edge := b.AddAS(edgeNodeName(g.ASes[s]), bgp.ASN(64701+k), uint32(5001+k), 0)
		lnk, _, _ := b.Wire(edge, m.ASes[s], WireOpts{
			RelAB:   bgp.RelProvider,
			DelayAB: dc, DelayBA: dc,
			SessionDelay: genEdgeSessionDelay,
			MRAI:         time.Second,
		})
		if err := DefaultRoute(edge, lnk); err != nil {
			return nil, err
		}
		host, err := hostBase.Subnet(48, k)
		if err != nil {
			return nil, fmt.Errorf("topo: host prefix for edge site %d: %w", s, err)
		}
		edge.Speaker.Originate(host)
		m.Edges[s] = edge
		m.Hosts[s] = host
	}
	return m, nil
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// ProbePrefix returns the i-th discovery probe prefix (i < 4096). Each
// concurrent discovery in a sweep announces its own probe, so per-pair
// suppression communities never interfere.
func (m *GenScenario) ProbePrefix(i int) (addr.Prefix, error) {
	return m.probeBase.Subnet(48, i)
}

// Run advances virtual time by d.
func (m *GenScenario) Run(d time.Duration) { m.B.W.Run(m.B.W.Now() + d) }
