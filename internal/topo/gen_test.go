package topo

import (
	"reflect"
	"testing"
	"time"

	"tango/internal/bgp"
)

// genSweepConfig is the 25-seed property sweep's graph shape: small
// enough to build a full simulation per seed, rich enough to exercise
// multi-homing, lateral peerings, and preferential attachment.
func genSweepConfig(seed int64) GenConfig {
	return GenConfig{
		Seed:           seed,
		Tier1:          3,
		Tier2:          6,
		Sites:          10,
		MinHoming:      2,
		MaxHoming:      3,
		Tier2MaxHoming: 2,
		PeerLinks:      3,
		PrefExp:        1.0,
	}
}

const genSweepSeeds = 25

// TestGenProperties is the generator's property suite: for every seed,
// the graph is connected, relationship-antisymmetric, acyclic in the
// provider direction, within its homing bounds, and a pure function of
// config+seed.
func TestGenProperties(t *testing.T) {
	for seed := int64(0); seed < genSweepSeeds; seed++ {
		cfg := genSweepConfig(seed)
		g, err := Gen(cfg)
		if err != nil {
			t.Fatalf("seed %d: Gen: %v", seed, err)
		}

		// Purity: a second build (graph and partition layout) is deeply
		// equal.
		g2, err := Gen(cfg)
		if err != nil {
			t.Fatalf("seed %d: second Gen: %v", seed, err)
		}
		if !reflect.DeepEqual(g, g2) {
			t.Fatalf("seed %d: two builds of the same config differ", seed)
		}
		sites := []int{cfg.Tier1 + cfg.Tier2, cfg.Tier1 + cfg.Tier2 + 1}
		if !reflect.DeepEqual(GenPartition(g, sites), GenPartition(g2, sites)) {
			t.Fatalf("seed %d: partition layouts of equal graphs differ", seed)
		}

		if want := cfg.Tier1 + cfg.Tier2 + cfg.Sites; len(g.ASes) != want {
			t.Fatalf("seed %d: %d ASes, want %d", seed, len(g.ASes), want)
		}
		if !g.Connected() {
			t.Fatalf("seed %d: graph is not connected", seed)
		}
		if !g.ProviderAcyclic() {
			t.Fatalf("seed %d: provider digraph has a cycle", seed)
		}

		// Relationship antisymmetry: X customer-of Y ⇔ Y provider-of X,
		// and peering is symmetric.
		for _, e := range g.Edges {
			ab, ok := g.Rel(e.A, e.B)
			ba, ok2 := g.Rel(e.B, e.A)
			if !ok || !ok2 {
				t.Fatalf("seed %d: edge %d-%d not adjacent via Rel", seed, e.A, e.B)
			}
			want := map[bgp.Relation]bgp.Relation{
				bgp.RelProvider: bgp.RelCustomer,
				bgp.RelCustomer: bgp.RelProvider,
				bgp.RelPeer:     bgp.RelPeer,
			}[ab]
			if ba != want {
				t.Fatalf("seed %d: edge %d-%d relation %v inverts to %v, want %v",
					seed, e.A, e.B, ab, ba, want)
			}
		}

		// ASN uniqueness and tier/homing structure.
		if len(g.ASNIndex()) != len(g.ASes) {
			t.Fatalf("seed %d: duplicate ASNs", seed)
		}
		for i, a := range g.ASes {
			provs := g.Providers(i)
			switch a.Tier {
			case GenTier1:
				if len(provs) != 0 {
					t.Fatalf("seed %d: tier-1 %s has providers %v", seed, a.Name, provs)
				}
			case GenTier2:
				if len(provs) < 1 || len(provs) > cfg.Tier2MaxHoming {
					t.Fatalf("seed %d: tier-2 %s has %d providers, want 1..%d",
						seed, a.Name, len(provs), cfg.Tier2MaxHoming)
				}
			case GenStub:
				if len(provs) < cfg.MinHoming || len(provs) > cfg.MaxHoming {
					t.Fatalf("seed %d: site %s has %d providers, want %d..%d",
						seed, a.Name, len(provs), cfg.MinHoming, cfg.MaxHoming)
				}
			}
			// Providers are always earlier-created — the structural form
			// of provider-direction acyclicity.
			for _, p := range provs {
				if p >= i {
					t.Fatalf("seed %d: %s has provider index %d >= its own %d", seed, a.Name, p, i)
				}
			}
		}

		// Ground truth sanity: every site pair reaches through at least
		// one of dst's providers, and never through a non-provider.
		src, dst := cfg.Tier1+cfg.Tier2, cfg.Tier1+cfg.Tier2+1
		truth := g.ValleyFreeProviders(dst, src)
		if len(truth) == 0 {
			t.Fatalf("seed %d: no valley-free provider between sites %d and %d", seed, src, dst)
		}
		provASNs := map[bgp.ASN]bool{}
		for _, p := range g.Providers(dst) {
			provASNs[g.ASes[p].ASN] = true
		}
		for _, a := range truth {
			if !provASNs[a] {
				t.Fatalf("seed %d: ground truth names AS%d, not a provider of %d", seed, a, dst)
			}
		}
	}
}

// TestGenSpeakerValleyFree builds each sweep graph as a live simulation
// and asserts that after convergence, every path selected by any speaker
// — transit ASes and Tango edges alike — is valley-free under the
// graph's relationships. This pins the bgp package's Gao-Rexford export
// rule and import preference to the generator's model of them.
func TestGenSpeakerValleyFree(t *testing.T) {
	seeds := int64(genSweepSeeds)
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(0); seed < seeds; seed++ {
		cfg := genSweepConfig(seed)
		stub := cfg.Tier1 + cfg.Tier2
		s, err := NewGenScenario(GenScenarioConfig{
			Graph:     cfg,
			EdgeSites: []int{stub, stub + 3, stub + 7},
		})
		if err != nil {
			t.Fatalf("seed %d: NewGenScenario: %v", seed, err)
		}
		s.Run(120 * time.Second)

		checked := 0
		checkSpeaker := func(observer bgp.ASN, sp *bgp.Speaker) {
			for _, p := range sp.BestPrefixes() {
				r := sp.Best(p)
				if r.FromSession == nil {
					continue // locally originated
				}
				// Paths heard straight from a tenant edge still carry its
				// private ASN (stripping happens on the way to the core);
				// the graph walk covers public hops only.
				if !s.G.ValleyFreeObserved(observer, r.Path.StripPrivate()) {
					t.Fatalf("seed %d: %s selected non-valley-free path [%v] for %v",
						seed, sp.Name, r.Path, p)
				}
				checked++
			}
		}
		for i, as := range s.ASes {
			checkSpeaker(s.G.ASes[i].ASN, as.Speaker)
		}
		for _, e := range s.Edges {
			// Edge servers observe from off-graph private ASNs.
			checkSpeaker(0, e.Speaker)
		}
		if checked == 0 {
			t.Fatalf("seed %d: no learned best routes to check", seed)
		}
	}
}

// TestGenValidateErrors spot-checks that Validate rejects each class of
// invalid config with an error (the fuzz target explores the space).
func TestGenValidateErrors(t *testing.T) {
	base := genSweepConfig(1)
	bad := []func(*GenConfig){
		func(c *GenConfig) { c.Tier1 = 0 },
		func(c *GenConfig) { c.Tier1 = 65 },
		func(c *GenConfig) { c.Tier2 = -1 },
		func(c *GenConfig) { c.Tier2 = 4097 },
		func(c *GenConfig) { c.Sites = -1 },
		func(c *GenConfig) { c.Sites = 50001 },
		func(c *GenConfig) { c.MinHoming = 0 },
		func(c *GenConfig) { c.MaxHoming = 1 }, // below MinHoming 2
		func(c *GenConfig) { c.MaxHoming = 7 }, // above the tier-2 pool
		func(c *GenConfig) { c.Tier2MaxHoming = 0 },
		func(c *GenConfig) { c.PeerLinks = -1 },
		func(c *GenConfig) { c.PeerLinks = 16 }, // above the tier-2 pair count
		func(c *GenConfig) { c.PrefExp = -0.5 },
		func(c *GenConfig) { c.PrefExp = 9 },
	}
	for i, mutate := range bad {
		c := base
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
		if _, err := Gen(c); err == nil {
			t.Errorf("case %d: Gen accepted %+v", i, c)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("baseline config rejected: %v", err)
	}
}
