package topo

import (
	"fmt"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
	"tango/internal/simnet"
)

// N-site mesh construction (§6, "from Tango of 2 to Tango of N"): every
// deployment this package builds — the paper's two-site Vultr testbed,
// the three-site tri scenario, and arbitrary overlays — is one
// MeshConfig run through NewMeshScenario. A mesh is a set of sites, each
// a POP attached to some transit providers, plus the deployed pairs:
// for every pair each site runs a dedicated Tango edge server behind its
// POP, because a pairwise deployment owns its own pinned prefixes and
// measurement state ("more PoPs of the same network", §6).
//
// Construction order is canonical — providers, then sites with their
// transit wires, then pairs, then provider peerings — so the same config
// always yields the same simulation. Determinism across *refactors*
// rests on names and router IDs, not creation order: simnet RNG streams
// are keyed by node-name pairs and BGP ties break on RouterID.

// MeshProvider declares one transit provider.
type MeshProvider struct {
	Name string
	// NodeName is the simnet node name; defaults to Name.
	NodeName string
	ASN      bgp.ASN
	// RouterID defaults to 21+index.
	RouterID uint32
}

// MeshAttachment connects a site's POP to a provider, with the two
// directed delay models: Access carries POP->provider (typically
// near-zero), Trunk carries provider->POP (the wide-area direction that
// incident injection targets). Nil models default to fixed 1 ms.
type MeshAttachment struct {
	Provider string
	Access   simnet.DelayModel
	Trunk    simnet.DelayModel
}

// MeshSite declares one deployment site.
type MeshSite struct {
	Name        string
	ClockOffset time.Duration // applied to the site's edge servers
	// POPName defaults to "pop-"+Name.
	POPName string
	POPASN  bgp.ASN
	// POPRouterID defaults to 11+index.
	POPRouterID uint32
	// AllowOwnAS enables allowas-in on the POP's transit sessions, for
	// overlays whose sites share one POP ASN (Vultr's AS 20473).
	AllowOwnAS bool
	Attach     []MeshAttachment
}

// MeshPairSide overrides per-side details of one deployed pair. Zero
// values take mesh-wide defaults (sequential edge ASNs/router IDs,
// prefixes carved from EdgeBlockBase).
type MeshPairSide struct {
	EdgeName string      // default "edge-<site>:<peer>"
	EdgeASN  bgp.ASN     // default 64701, 64702, ...
	RouterID uint32      // default 100+edge index
	Block    addr.Prefix // institutional space for pinned tunnel prefixes (/44)
	Host     addr.Prefix // host prefix, originated plainly (/48)
	Probe    addr.Prefix // discovery probe prefix (/48)
}

// MeshPair deploys Tango between two sites: one edge server per side.
type MeshPair struct {
	A, B         string
	SideA, SideB MeshPairSide
}

// MeshPeering wires a settlement-free peering between two providers.
type MeshPeering struct {
	A, B string
	// Delay is the one-way peering-hop delay, both directions (default
	// 4 ms).
	Delay time.Duration
}

// MeshConfig declares an N-site mesh.
type MeshConfig struct {
	Seed int64
	// Shards, when positive, builds the mesh over a partitioned network
	// (see MeshPartition) and runs parallel phases on that many worker
	// goroutines. The partition layout is a function of the topology and
	// Seed only — Shards sets workers, never the layout — so any two
	// positive values produce identical simulations, differing only in
	// wall-clock time. Zero builds the classic single-engine network.
	Shards int
	// MRAI paces the transit and peering sessions (default 5 s).
	MRAI time.Duration
	// EdgeBlockBase supplies default per-edge prefixes (a /44 block plus
	// host and probe /48s per edge, in edge-creation order). Default
	// 2001:db8:4000::/36.
	EdgeBlockBase addr.Prefix
	Providers     []MeshProvider
	Sites         []MeshSite
	Pairs         []MeshPair
	Peerings      []MeshPeering
}

// MeshScenario is a built N-site deployment.
type MeshScenario struct {
	B *Builder

	// SiteNames and PairKeys preserve config order.
	SiteNames []string
	PairKeys  [][2]string

	// POPs by site name; Providers by provider name.
	POPs      map[string]*AS
	Providers map[string]*AS
	// Edges holds the per-pair Tango servers, keyed by "<site>:<peer>"
	// (Edges["ny:la"] pairs with Edges["la:ny"]).
	Edges map[string]*AS

	// Trunk[site][provider] is the line carrying traffic from the
	// provider's hub toward that site; incident injection targets these.
	Trunk map[string]map[string]*simnet.Line
	// Uplink[site][provider] is the reverse direction of the same wire:
	// the line from that site's POP toward the provider's hub. TE-style
	// capacity accounting needs both directions of a trunk.
	Uplink map[string]map[string]*simnet.Line

	// HostPrefix / Block / Probe per edge key.
	HostPrefix map[string]addr.Prefix
	Block      map[string]addr.Prefix
	Probe      map[string]addr.Prefix

	// Layout is the partition layout the mesh was built over (zero value
	// when cfg.Shards == 0).
	Layout Partition
}

// meshSessionDelay and meshEdgeDelay mirror the construction constants
// below; MeshPartition folds them into the partition graph, so the two
// must stay in sync with NewMeshScenario's wiring.
const (
	meshSessionDelay     = 10 * time.Millisecond // Wire's default control-plane delay
	meshEdgeLinkDelay    = 200 * time.Microsecond
	meshEdgeSessionDelay = time.Millisecond
	meshPeeringDelay     = 4 * time.Millisecond
)

// modelFloor returns the known propagation minimum of a delay model: nil
// models take Wire's 1 ms default, models without a declared floor are
// conservatively 0 (forcing their endpoints into one partition).
func modelFloor(dm simnet.DelayModel) time.Duration {
	if dm == nil {
		return time.Millisecond
	}
	if md, ok := dm.(simnet.MinDelayer); ok {
		return md.MinDelay()
	}
	return 0
}

// MeshPartition derives the partition graph of a mesh config without
// building it: the nodes are every provider, POP, and edge server the
// config will create, and each adjacency's per-direction minimum folds
// the data-plane delay floor with the BGP session delay (whichever plane
// interacts first bounds the lookahead). The layout depends only on the
// topology and cfg.Seed — never on cfg.Shards.
func MeshPartition(cfg MeshConfig) Partition {
	var nodes []string
	var edges []PartEdge
	provNode := map[string]string{}
	for _, p := range cfg.Providers {
		node := p.NodeName
		if node == "" {
			node = p.Name
		}
		provNode[p.Name] = node
		nodes = append(nodes, node)
	}
	popNode := map[string]string{}
	for _, s := range cfg.Sites {
		pop := s.POPName
		if pop == "" {
			pop = "pop-" + s.Name
		}
		popNode[s.Name] = pop
		nodes = append(nodes, pop)
		for _, at := range s.Attach {
			pn, ok := provNode[at.Provider]
			if !ok {
				continue // construction reports the error
			}
			edges = append(edges, PartEdge{
				A: pop, B: pn,
				MinDelayAB: min(modelFloor(at.Access), meshSessionDelay),
				MinDelayBA: min(modelFloor(at.Trunk), meshSessionDelay),
			})
		}
	}
	for _, pr := range cfg.Pairs {
		for k := 0; k < 2; k++ {
			siteName, peer, side := pr.A, pr.B, pr.SideA
			if k == 1 {
				siteName, peer, side = pr.B, pr.A, pr.SideB
			}
			pop, ok := popNode[siteName]
			if !ok {
				continue
			}
			name := side.EdgeName
			if name == "" {
				name = "edge-" + siteName + ":" + peer
			}
			nodes = append(nodes, name)
			d := min(meshEdgeLinkDelay, meshEdgeSessionDelay)
			edges = append(edges, PartEdge{A: name, B: pop, MinDelayAB: d, MinDelayBA: d})
		}
	}
	for _, pe := range cfg.Peerings {
		pa, oka := provNode[pe.A]
		pb, okb := provNode[pe.B]
		if !oka || !okb {
			continue
		}
		d := pe.Delay
		if d == 0 {
			d = meshPeeringDelay
		}
		d = min(d, meshSessionDelay)
		edges = append(edges, PartEdge{A: pa, B: pb, MinDelayAB: d, MinDelayBA: d})
	}
	return PartitionGraph(cfg.Seed, nodes, edges, 0, 0)
}

// NewMeshScenario builds the mesh, validating the config as it goes.
func NewMeshScenario(cfg MeshConfig) (*MeshScenario, error) {
	var b *Builder
	var layout Partition
	if cfg.Shards > 0 {
		layout = MeshPartition(cfg)
		b = NewShardedBuilder(cfg.Seed, layout)
		b.W.Coord().SetWorkers(cfg.Shards)
	} else {
		b = NewBuilder(cfg.Seed)
	}
	m := &MeshScenario{
		B:          b,
		Layout:     layout,
		POPs:       map[string]*AS{},
		Providers:  map[string]*AS{},
		Edges:      map[string]*AS{},
		Trunk:      map[string]map[string]*simnet.Line{},
		Uplink:     map[string]map[string]*simnet.Line{},
		HostPrefix: map[string]addr.Prefix{},
		Block:      map[string]addr.Prefix{},
		Probe:      map[string]addr.Prefix{},
	}
	mrai := cfg.MRAI
	if mrai == 0 {
		mrai = 5 * time.Second
	}
	blockBase := cfg.EdgeBlockBase
	if !blockBase.IsValid() {
		blockBase = addr.MustParsePrefix("2001:db8:4000::/36")
	}
	blockAl := addr.NewAlloc(blockBase)

	for i, p := range cfg.Providers {
		if m.Providers[p.Name] != nil {
			return nil, fmt.Errorf("topo: duplicate provider %q", p.Name)
		}
		node := p.NodeName
		if node == "" {
			node = p.Name
		}
		rid := p.RouterID
		if rid == 0 {
			rid = uint32(21 + i)
		}
		m.Providers[p.Name] = b.AddAS(node, p.ASN, rid, 0)
	}

	siteCfg := map[string]MeshSite{}
	for i, s := range cfg.Sites {
		if _, dup := siteCfg[s.Name]; dup {
			return nil, fmt.Errorf("topo: duplicate site %q", s.Name)
		}
		siteCfg[s.Name] = s
		m.SiteNames = append(m.SiteNames, s.Name)
		popName := s.POPName
		if popName == "" {
			popName = "pop-" + s.Name
		}
		rid := s.POPRouterID
		if rid == 0 {
			rid = uint32(11 + i)
		}
		pop := b.AddAS(popName, s.POPASN, rid, 0)
		m.POPs[s.Name] = pop
		m.Trunk[s.Name] = map[string]*simnet.Line{}
		m.Uplink[s.Name] = map[string]*simnet.Line{}
		for _, at := range s.Attach {
			prov := m.Providers[at.Provider]
			if prov == nil {
				return nil, fmt.Errorf("topo: site %q attaches to unknown provider %q", s.Name, at.Provider)
			}
			lnk, _, _ := b.Wire(pop, prov, WireOpts{
				RelAB:   bgp.RelProvider,
				DelayAB: at.Access,
				DelayBA: at.Trunk,
				MRAI:    mrai,
				// The POP strips the tenant's private ASN and scrubs
				// action communities when announcing to the core.
				StripPrivateA2B: true,
				ScrubA2B:        true,
				AllowOwnASA:     s.AllowOwnAS,
			})
			m.Trunk[s.Name][at.Provider] = lnk.LineFrom(prov.Node)
			m.Uplink[s.Name][at.Provider] = lnk.LineFrom(pop.Node)
		}
	}

	// Per-pair edge servers: dedicated AS behind each site's POP, with
	// default route toward it and a plainly originated host prefix.
	dc := simnet.FixedDelay(meshEdgeLinkDelay)
	edgeASN := bgp.ASN(64700)
	for _, pr := range cfg.Pairs {
		if pr.A == pr.B {
			return nil, fmt.Errorf("topo: pair %q:%q is a self-pair", pr.A, pr.B)
		}
		for k := 0; k < 2; k++ {
			siteName, peer := pr.A, pr.B
			side := pr.SideA
			if k == 1 {
				siteName, peer = pr.B, pr.A
				side = pr.SideB
			}
			site, ok := siteCfg[siteName]
			if !ok {
				return nil, fmt.Errorf("topo: pair references unknown site %q", siteName)
			}
			key := siteName + ":" + peer
			if m.Edges[key] != nil {
				return nil, fmt.Errorf("topo: duplicate pair %s", key)
			}
			edgeASN++
			asn := side.EdgeASN
			if asn == 0 {
				asn = edgeASN
			}
			rid := side.RouterID
			if rid == 0 {
				rid = uint32(100 + len(m.Edges))
			}
			name := side.EdgeName
			if name == "" {
				name = "edge-" + key
			}
			edge := b.AddAS(name, asn, rid, site.ClockOffset)
			m.Edges[key] = edge
			lnk, _, _ := b.Wire(edge, m.POPs[siteName], WireOpts{
				RelAB:   bgp.RelProvider,
				DelayAB: dc, DelayBA: dc,
				SessionDelay: meshEdgeSessionDelay,
				MRAI:         time.Second,
			})
			if err := DefaultRoute(edge, lnk); err != nil {
				return nil, err
			}
			var err error
			if m.Block[key], err = sideOrAlloc(side.Block, blockAl, 44); err != nil {
				return nil, fmt.Errorf("topo: block for %s: %w", key, err)
			}
			if m.HostPrefix[key], err = sideOrAlloc(side.Host, blockAl, 48); err != nil {
				return nil, fmt.Errorf("topo: host prefix for %s: %w", key, err)
			}
			if m.Probe[key], err = sideOrAlloc(side.Probe, blockAl, 48); err != nil {
				return nil, fmt.Errorf("topo: probe prefix for %s: %w", key, err)
			}
			edge.Speaker.Originate(m.HostPrefix[key])
		}
		m.PairKeys = append(m.PairKeys, [2]string{pr.A, pr.B})
	}

	for _, pe := range cfg.Peerings {
		pa, pb := m.Providers[pe.A], m.Providers[pe.B]
		if pa == nil || pb == nil {
			return nil, fmt.Errorf("topo: peering %s<->%s references unknown provider", pe.A, pe.B)
		}
		d := pe.Delay
		if d == 0 {
			d = meshPeeringDelay
		}
		b.Wire(pa, pb, WireOpts{
			RelAB:   bgp.RelPeer,
			DelayAB: simnet.FixedDelay(d),
			DelayBA: simnet.FixedDelay(d),
			MRAI:    mrai,
		})
	}
	return m, nil
}

func sideOrAlloc(p addr.Prefix, al *addr.Alloc, bits int) (addr.Prefix, error) {
	if p.IsValid() {
		return p, nil
	}
	return al.NextSubnet(bits)
}

// Run advances virtual time by d.
func (m *MeshScenario) Run(d time.Duration) { m.B.W.Run(m.B.W.Now() + d) }

// Edge returns the server at site paired with peer.
func (m *MeshScenario) Edge(site, peer string) (*AS, error) {
	e, ok := m.Edges[site+":"+peer]
	if !ok {
		return nil, fmt.Errorf("topo: no edge %s:%s", site, peer)
	}
	return e, nil
}

// Adjacent reports whether a pair is deployed between two sites.
func (m *MeshScenario) Adjacent(a, b string) bool {
	_, ok := m.Edges[a+":"+b]
	return ok
}

// RadialProvider parameterizes a provider for RadialMeshConfig: its
// hub-and-spoke backbone scales each site's radius by Scale (NTT slowest,
// GTT fastest in the tri calibration) with per-packet jitter Std.
type RadialProvider struct {
	Name  string
	ASN   bgp.ASN
	Scale float64
	Std   time.Duration
}

// RadialSite places a site on the radial model.
type RadialSite struct {
	Name        string
	Radius      time.Duration
	ClockOffset time.Duration
	Providers   []string
}

// RadialMeshConfig builds a MeshConfig under the radial delay model:
// provider P's backbone is a hub, each attached POP sits at the site
// radius scaled by P's factor, and the P-path delay between two sites is
// the sum of their scaled radii plus jitter. POP ASNs are 30101, 30102,
// ... in site order; every listed pair is deployed with default edge
// numbering and prefixes.
func RadialMeshConfig(seed int64, provs []RadialProvider, sites []RadialSite, pairs [][2]string) MeshConfig {
	cfg := MeshConfig{Seed: seed}
	byName := map[string]RadialProvider{}
	for _, p := range provs {
		byName[p.Name] = p
		cfg.Providers = append(cfg.Providers, MeshProvider{Name: p.Name, ASN: p.ASN})
	}
	for i, s := range sites {
		ms := MeshSite{
			Name:        s.Name,
			ClockOffset: s.ClockOffset,
			POPASN:      bgp.ASN(30101 + i),
		}
		for _, pname := range s.Providers {
			p := byName[pname]
			radial := time.Duration(float64(s.Radius) * p.Scale / 2)
			dm := simnet.GaussianDelay{
				Floor: radial,
				Mean:  radial + radial/100 + 50*time.Microsecond,
				Std:   p.Std,
			}
			ms.Attach = append(ms.Attach, MeshAttachment{Provider: pname, Access: dm, Trunk: dm})
		}
		cfg.Sites = append(cfg.Sites, ms)
	}
	for _, pr := range pairs {
		cfg.Pairs = append(cfg.Pairs, MeshPair{A: pr[0], B: pr[1]})
	}
	return cfg
}
