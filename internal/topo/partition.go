package topo

import (
	"fmt"
	"sort"
	"time"

	"tango/internal/sim"
)

// PartEdge is one link of the partitioning graph: an undirected adjacency
// with possibly asymmetric per-direction minimum delays (the propagation
// floors of the two lines, folded with the BGP session delay when the
// adjacency carries one).
type PartEdge struct {
	A, B                   string
	MinDelayAB, MinDelayBA time.Duration
}

// minBoth returns the edge's conservative minimum: the earliest any event
// can cross the adjacency in either direction.
func (e PartEdge) minBoth() time.Duration {
	if e.MinDelayAB < e.MinDelayBA {
		return e.MinDelayAB
	}
	return e.MinDelayBA
}

// Partition assigns every node of a topology graph to one simulation
// partition and reports the conservative lookahead.
type Partition struct {
	// Part maps node name to partition index.
	Part map[string]int
	// Parts is the partition count (0 for an empty graph).
	Parts int
	// Lookahead is the minimum delay of any edge whose endpoints landed
	// in different partitions — the epoch length a conservative parallel
	// simulation may use. Zero when fewer than two partitions exist or no
	// edge crosses a boundary.
	Lookahead time.Duration
}

// DefaultCutFloor separates "same machine room" delays from wide-area
// ones: edges faster than this never cross a partition boundary, so the
// lookahead is always at least this large. Site-internal links (edge
// server to POP, 200 µs) stay intra-partition; wide-area trunks and
// peerings (≥ 1 ms floors) may be cut.
const DefaultCutFloor = time.Millisecond

// PartitionGraph groups nodes connected by edges faster than cutFloor
// into clusters (they must share an engine: their interactions are too
// fast to synchronize conservatively at a useful cadence) and assigns
// clusters to partitions. With maxParts <= 0 or more than the cluster
// count, every cluster is its own partition; otherwise clusters are
// packed onto maxParts partitions by balanced size, ties broken by the
// seeded RNG so packing is deterministic for a (seed, graph) pair.
//
// The partition layout is a function of the topology and seed only —
// never of the worker count driving the simulation — which is what makes
// 1-worker and N-worker runs produce identical event orders.
func PartitionGraph(seed int64, nodes []string, edges []PartEdge, maxParts int, cutFloor time.Duration) Partition {
	if cutFloor <= 0 {
		cutFloor = DefaultCutFloor
	}
	p := Partition{Part: make(map[string]int, len(nodes))}
	if len(nodes) == 0 {
		return p
	}
	idx := make(map[string]int, len(nodes))
	for i, n := range nodes {
		if _, dup := idx[n]; dup {
			panic(fmt.Sprintf("topo: PartitionGraph: duplicate node %q", n))
		}
		idx[n] = i
	}
	// Union-find over sub-cutFloor edges.
	parent := make([]int, len(nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	lookup := func(name string) int {
		i, ok := idx[name]
		if !ok {
			panic(fmt.Sprintf("topo: PartitionGraph: edge references unknown node %q", name))
		}
		return i
	}
	for _, e := range edges {
		a, b := lookup(e.A), lookup(e.B)
		if e.minBoth() < cutFloor {
			ra, rb := find(a), find(b)
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	// Number clusters by first appearance in node order, so the layout is
	// stable under edge reordering.
	cluster := make([]int, len(nodes))
	clusterOf := make(map[int]int)
	for i := range nodes {
		r := find(i)
		c, ok := clusterOf[r]
		if !ok {
			c = len(clusterOf)
			clusterOf[r] = c
		}
		cluster[i] = c
	}
	nclusters := len(clusterOf)

	// Map clusters to partitions: identity when they all fit, balanced
	// packing (largest first onto the lightest partition) otherwise.
	partOf := make([]int, nclusters)
	if maxParts <= 0 || nclusters <= maxParts {
		for c := range partOf {
			partOf[c] = c
		}
		p.Parts = nclusters
	} else {
		size := make([]int, nclusters)
		for i := range nodes {
			size[cluster[i]]++
		}
		order := make([]int, nclusters)
		for c := range order {
			order[c] = c
		}
		sort.SliceStable(order, func(i, j int) bool { return size[order[i]] > size[order[j]] })
		rng := sim.NewStreams(seed).Stream("topo/partition")
		load := make([]int, maxParts)
		for _, c := range order {
			// Collect the currently lightest partitions and draw one, so
			// equal-size layouts spread seeded rather than always leftward.
			best, ties := load[0], 1
			for _, l := range load[1:] {
				if l < best {
					best, ties = l, 1
				} else if l == best {
					ties++
				}
			}
			pick := rng.Intn(ties)
			for pi, l := range load {
				if l != best {
					continue
				}
				if pick == 0 {
					partOf[c] = pi
					load[pi] += size[c]
					break
				}
				pick--
			}
		}
		p.Parts = maxParts
	}
	for i, n := range nodes {
		p.Part[n] = partOf[cluster[i]]
	}

	// Lookahead: the tightest min delay crossing a partition boundary.
	if p.Parts > 1 {
		for _, e := range edges {
			if p.Part[e.A] == p.Part[e.B] {
				continue
			}
			if m := e.minBoth(); p.Lookahead == 0 || m < p.Lookahead {
				p.Lookahead = m
			}
		}
	}
	return p
}
