package topo

import (
	"testing"
	"time"

	"tango/internal/sim"
	"tango/internal/simnet"
)

func TestPartitionGraphEmpty(t *testing.T) {
	p := PartitionGraph(1, nil, nil, 0, 0)
	if p.Parts != 0 || len(p.Part) != 0 || p.Lookahead != 0 {
		t.Fatalf("empty graph: got %+v", p)
	}
	if mp := MeshPartition(MeshConfig{}); mp.Parts != 0 || mp.Lookahead != 0 {
		t.Fatalf("empty mesh: got %+v", mp)
	}
}

func TestPartitionSingleSiteMergesWithFastAccess(t *testing.T) {
	// A lone site whose access link is faster than the cut floor shares a
	// partition with its provider: there is nothing to parallelize, and
	// the lookahead stays zero.
	cfg := MeshConfig{
		Providers: []MeshProvider{{Name: "P", ASN: 100}},
		Sites: []MeshSite{{
			Name:   "solo",
			POPASN: 200,
			Attach: []MeshAttachment{{
				Provider: "P",
				Access:   fastModel{},
				Trunk:    fastModel{},
			}},
		}},
	}
	p := MeshPartition(cfg)
	if p.Parts != 1 {
		t.Fatalf("single fast-linked site: want 1 partition, got %d", p.Parts)
	}
	if p.Lookahead != 0 {
		t.Fatalf("single partition has no cross edges: want lookahead 0, got %v", p.Lookahead)
	}
}

// fastModel is a delay model with a declared sub-cut-floor minimum.
type fastModel struct{}

func (fastModel) Sample(sim.Time, *sim.RNG) time.Duration { return 50 * time.Microsecond }
func (fastModel) MinDelay() time.Duration                 { return 50 * time.Microsecond }

var _ simnet.MinDelayer = fastModel{}

func TestPartitionMoreShardsThanNodesClamps(t *testing.T) {
	// Shards is a worker count, not a layout input: asking for more
	// workers than partitions exist clamps to the partition count and
	// changes nothing about the layout.
	cfg := TriConfig(7)
	want := MeshPartition(MeshConfig{
		Seed:      cfg.Seed,
		Providers: cfg.Providers,
		Sites:     cfg.Sites,
		Pairs:     cfg.Pairs,
		Peerings:  cfg.Peerings,
	})
	cfg.Shards = 999
	s, err := NewMeshScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := s.B.W.Coord()
	if c == nil {
		t.Fatal("sharded build has no coordinator")
	}
	if c.Workers() != c.NumParts() {
		t.Fatalf("workers %d, want clamp to partition count %d", c.Workers(), c.NumParts())
	}
	if s.Layout.Parts != want.Parts {
		t.Fatalf("worker count changed the layout: %d parts vs %d", s.Layout.Parts, want.Parts)
	}
	for n, part := range want.Part {
		if s.Layout.Part[n] != part {
			t.Fatalf("node %s moved: partition %d vs %d", n, s.Layout.Part[n], part)
		}
	}
}

func TestPartitionLookaheadAsymmetricDelays(t *testing.T) {
	// The lookahead must be the minimum over BOTH directions of every
	// cut edge: an epoch bounds when any cross event can land, and the
	// faster direction is the binding one.
	nodes := []string{"a", "b", "c"}
	edges := []PartEdge{
		{A: "a", B: "b", MinDelayAB: 9 * time.Millisecond, MinDelayBA: 3 * time.Millisecond},
		{A: "b", B: "c", MinDelayAB: 5 * time.Millisecond, MinDelayBA: 20 * time.Millisecond},
	}
	p := PartitionGraph(1, nodes, edges, 0, 0)
	if p.Parts != 3 {
		t.Fatalf("want 3 partitions, got %d", p.Parts)
	}
	if p.Lookahead != 3*time.Millisecond {
		t.Fatalf("lookahead: want 3ms (min of 9/3/5/20), got %v", p.Lookahead)
	}

	// Reversing an edge's direction fields must not change the answer.
	edges[0].MinDelayAB, edges[0].MinDelayBA = edges[0].MinDelayBA, edges[0].MinDelayAB
	if q := PartitionGraph(1, nodes, edges, 0, 0); q.Lookahead != 3*time.Millisecond {
		t.Fatalf("lookahead after swap: want 3ms, got %v", q.Lookahead)
	}
}

func TestPartitionSubFloorEdgeNeverCut(t *testing.T) {
	// An edge faster than the cut floor glues its endpoints into one
	// cluster even when one direction is slow: conservative sync at that
	// cadence would be useless.
	nodes := []string{"a", "b", "c"}
	edges := []PartEdge{
		{A: "a", B: "b", MinDelayAB: 100 * time.Microsecond, MinDelayBA: 30 * time.Millisecond},
		{A: "b", B: "c", MinDelayAB: 2 * time.Millisecond, MinDelayBA: 2 * time.Millisecond},
	}
	p := PartitionGraph(1, nodes, edges, 0, 0)
	if p.Parts != 2 {
		t.Fatalf("want 2 partitions (a+b merged), got %d", p.Parts)
	}
	if p.Part["a"] != p.Part["b"] {
		t.Fatal("sub-floor edge a-b was cut")
	}
	if p.Lookahead != 2*time.Millisecond {
		t.Fatalf("lookahead: want 2ms, got %v", p.Lookahead)
	}
}

func TestPartitionPackingDeterministicPerSeed(t *testing.T) {
	// More clusters than maxParts forces balanced packing; the tiebreak
	// is seeded, so a fixed seed reproduces the layout exactly.
	nodes := []string{"a", "b", "c", "d", "e"}
	var edges []PartEdge // no edges: five singleton clusters
	first := PartitionGraph(42, nodes, edges, 2, 0)
	if first.Parts != 2 {
		t.Fatalf("want 2 packed partitions, got %d", first.Parts)
	}
	for i := 0; i < 5; i++ {
		again := PartitionGraph(42, nodes, edges, 2, 0)
		for _, n := range nodes {
			if first.Part[n] != again.Part[n] {
				t.Fatalf("seeded packing not reproducible: %s moved", n)
			}
		}
	}
	// Disconnected partitions have no cross edges to bound the epoch.
	if first.Lookahead != 0 {
		t.Fatalf("no edges: want lookahead 0, got %v", first.Lookahead)
	}
}
