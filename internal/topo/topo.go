// Package topo assembles simulated internets: it couples a BGP speaker to
// a forwarding node per AS, wires inter-AS links carrying both the data
// plane (simnet) and the control plane (bgp sessions), and keeps each
// node's FIB synchronized with its speaker's best routes.
package topo

import (
	"fmt"
	"net/netip"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
	"tango/internal/sim"
	"tango/internal/simnet"
)

// AS is one autonomous system's point of presence: a forwarding node and
// a BGP speaker whose decisions program the node's FIB.
type AS struct {
	Name    string
	ASN     bgp.ASN
	Node    *simnet.Node
	Speaker *bgp.Speaker

	nhPort map[netip.Addr]*simnet.Port
}

// portFor resolves a BGP next hop to the output port toward that neighbor.
func (a *AS) portFor(nh netip.Addr) (*simnet.Port, bool) {
	p, ok := a.nhPort[nh]
	return p, ok
}

// Builder constructs a topology over one network/engine.
type Builder struct {
	W       *simnet.Network
	ases    map[string]*AS
	linkSeq int
}

// NewBuilder creates a builder over a fresh network seeded with seed.
func NewBuilder(seed int64) *Builder {
	return &Builder{W: simnet.New(seed), ases: make(map[string]*AS)}
}

// NewShardedBuilder creates a builder over a partitioned network: p maps
// every future node name to its partition (see PartitionGraph), and the
// coordinator synchronizes partitions at p.Lookahead. A single-partition
// layout still runs through the coordinator (in coupled mode), so the
// same construction path serves every shard count.
func NewShardedBuilder(seed int64, p Partition) *Builder {
	parts := p.Parts
	if parts < 1 {
		parts = 1
	}
	w := simnet.NewSharded(seed, parts, p.Lookahead, func(name string) int {
		pi, ok := p.Part[name]
		if !ok {
			panic(fmt.Sprintf("topo: node %q missing from partition layout", name))
		}
		return pi
	})
	return &Builder{W: w, ases: make(map[string]*AS)}
}

// Eng returns the underlying engine.
func (b *Builder) Eng() *sim.Engine { return b.W.Eng }

// AS returns the named AS, or nil.
func (b *Builder) AS(name string) *AS { return b.ases[name] }

// AddAS creates an AS with the given clock offset on its node.
func (b *Builder) AddAS(name string, asn bgp.ASN, routerID uint32, clockOffset time.Duration) *AS {
	n := b.W.AddNode(name, clockOffset)
	sp := bgp.NewSpeaker(n.Eng(), name, asn, routerID)
	a := &AS{Name: name, ASN: asn, Node: n, Speaker: sp, nhPort: make(map[netip.Addr]*simnet.Port)}
	sp.OnBestChange = func(p addr.Prefix, best, old *bgp.Route) {
		a.applyBest(p, best)
	}
	b.ases[name] = a
	return a
}

func (a *AS) applyBest(p addr.Prefix, best *bgp.Route) {
	if best == nil {
		a.Node.DelRoute(p)
		return
	}
	if best.FromSession == nil {
		// Locally originated: traffic for it is delivered locally
		// (tunnel endpoints are owned addresses), no FIB entry needed.
		return
	}
	port, ok := a.portFor(best.NextHop)
	if !ok {
		panic(fmt.Sprintf("topo: %s has no port toward next hop %v", a.Name, best.NextHop))
	}
	a.Node.SetRoute(p, port)
}

// WireOpts configures one inter-AS adjacency.
type WireOpts struct {
	// RelAB is what B is to A (e.g. RelProvider: B provides transit to
	// A). The reverse relation is derived.
	RelAB bgp.Relation
	// DelayAB/DelayBA are the data-plane one-way delay models; nil
	// means a fixed 1 ms.
	DelayAB, DelayBA simnet.DelayModel
	// LossAB/LossBA are per-packet loss probabilities.
	LossAB, LossBA float64
	// SessionDelay is the one-way control-plane message delay
	// (defaults to 10 ms).
	SessionDelay time.Duration
	// MRAI paces UPDATEs on both sides (defaults to 5 s — short enough
	// to keep discovery experiments brisk, long enough to batch).
	MRAI time.Duration
	// HoldTime enables liveness detection on both sides when positive.
	HoldTime time.Duration
	// StripPrivateA2B strips private ASNs when A exports to B (and
	// B2A for the reverse): set on a provider's sessions toward the
	// core when the customer announces from a private ASN.
	StripPrivateA2B, StripPrivateB2A bool
	// ScrubA2B removes A's action communities when exporting to B
	// (after applying them), so operator knobs stay inside the
	// provider that offers them; ScrubB2A the reverse.
	ScrubA2B, ScrubB2A bool
	// AllowOwnASA / AllowOwnASB enable allowas-in on A's (resp. B's)
	// side of the session.
	AllowOwnASA, AllowOwnASB bool
	// ImportA runs on routes A learns from B; ImportB the reverse.
	ImportA, ImportB func(*bgp.Route) *bgp.Route
	// LinkPrefix, when valid, addresses the two session endpoints from
	// its ::1 and ::2; otherwise a unique link /64 is synthesized from
	// an internal counter under 2001:db8:fe00::/40.
	LinkPrefix addr.Prefix
}

// Wire links two ASes in both planes and returns the created link and the
// two sessions (A-side first).
func (b *Builder) Wire(x, y *AS, o WireOpts) (*simnet.Link, *bgp.Session, *bgp.Session) {
	if o.DelayAB == nil {
		o.DelayAB = simnet.FixedDelay(time.Millisecond)
	}
	if o.DelayBA == nil {
		o.DelayBA = simnet.FixedDelay(time.Millisecond)
	}
	if o.SessionDelay == 0 {
		o.SessionDelay = meshSessionDelay
	}
	if o.MRAI == 0 {
		o.MRAI = 5 * time.Second
	}
	link := b.W.Connect(x.Node, y.Node,
		simnet.LinkConfig{Delay: o.DelayAB, Loss: o.LossAB},
		simnet.LinkConfig{Delay: o.DelayBA, Loss: o.LossBA})

	lp := o.LinkPrefix
	if !lp.IsValid() {
		base := addr.MustParsePrefix("2001:db8:fe00::/40")
		var err error
		lp, err = base.Subnet(64, b.linkSeq)
		if err != nil {
			panic(err)
		}
		b.linkSeq++
	}
	ipX := mustHost(lp, 1)
	ipY := mustHost(lp, 2)
	x.Node.AddAddr(ipX)
	y.Node.AddAddr(ipY)
	x.nhPort[ipY] = link.PortA()
	y.nhPort[ipX] = link.PortB()

	relBA := invert(o.RelAB)
	cfgX := bgp.SessionConfig{
		Relation:               o.RelAB,
		LocalAddr:              ipX,
		Delay:                  o.SessionDelay,
		MRAI:                   o.MRAI,
		HoldTime:               o.HoldTime,
		StripPrivateASNs:       o.StripPrivateA2B,
		ScrubActionCommunities: o.ScrubA2B,
		AllowOwnAS:             o.AllowOwnASA,
		Import:                 o.ImportA,
	}
	cfgY := bgp.SessionConfig{
		Relation:               relBA,
		LocalAddr:              ipY,
		Delay:                  o.SessionDelay,
		MRAI:                   o.MRAI,
		HoldTime:               o.HoldTime,
		StripPrivateASNs:       o.StripPrivateB2A,
		ScrubActionCommunities: o.ScrubB2A,
		AllowOwnAS:             o.AllowOwnASB,
		Import:                 o.ImportB,
	}
	sx, sy := bgp.Connect(x.Speaker, y.Speaker, cfgX, cfgY)
	return link, sx, sy
}

func invert(r bgp.Relation) bgp.Relation {
	switch r {
	case bgp.RelCustomer:
		return bgp.RelProvider
	case bgp.RelProvider:
		return bgp.RelCustomer
	default:
		return bgp.RelPeer
	}
}

func mustHost(p addr.Prefix, i uint64) netip.Addr {
	ip, err := p.Host(i)
	if err != nil {
		panic(err)
	}
	return ip
}

// DefaultRoute installs a static default route from a toward its neighbor
// on the given link (used by single-homed edges). It reports an error if
// the link is not attached to the AS.
func DefaultRoute(a *AS, link *simnet.Link) error {
	var port *simnet.Port
	switch a.Node {
	case link.PortA().Node():
		port = link.PortA()
	case link.PortB().Node():
		port = link.PortB()
	default:
		return fmt.Errorf("topo: DefaultRoute: link %v-%v not attached to %s",
			link.PortA().Node().Name(), link.PortB().Node().Name(), a.Name)
	}
	a.Node.SetRoute(addr.MustParsePrefix("::/0"), port)
	a.Node.SetRoute(addr.MustParsePrefix("0.0.0.0/0"), port)
	return nil
}
