package topo

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
	"tango/internal/packet"
	"tango/internal/simnet"
)

func converge(s *Scenario) { s.Run(5 * time.Minute) }

func mustVultr(t *testing.T, cfg ScenarioConfig) *Scenario {
	t.Helper()
	s, err := NewVultrScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScenarioConverges(t *testing.T) {
	s := mustVultr(t, ScenarioConfig{Seed: 1})
	converge(s)

	// Each edge learns the other's host prefix.
	bestAtLA := s.EdgeLA.Speaker.Best(s.HostNY)
	if bestAtLA == nil {
		t.Fatal("LA edge has no route to NY host prefix")
	}
	bestAtNY := s.EdgeNY.Speaker.Best(s.HostLA)
	if bestAtNY == nil {
		t.Fatal("NY edge has no route to LA host prefix")
	}
	// The default path runs through NTT (Vultr's most-preferred
	// transit), as in the paper.
	if got := ProviderNameForPath(bestAtLA.Path); got != "NTT" {
		t.Fatalf("LA default path via %s (path %v), want NTT", got, bestAtLA.Path)
	}
	if got := ProviderNameForPath(bestAtNY.Path); got != "NTT" {
		t.Fatalf("NY default path via %s (path %v), want NTT", got, bestAtNY.Path)
	}
	// Full AS path shape: [20473 2914 20473] after private-ASN strip.
	want := bgp.Path{bgp.ASVultr, bgp.ASNTT, bgp.ASVultr}
	if !bestAtLA.Path.Equal(want) {
		t.Fatalf("path = %v, want %v", bestAtLA.Path, want)
	}
}

func TestScenarioDataPlaneDefaultPath(t *testing.T) {
	s := mustVultr(t, ScenarioConfig{Seed: 2})
	converge(s)

	// Send a packet from the NY edge to an address in LA's host
	// prefix; it must arrive via NTT with roughly the NTT one-way
	// delay.
	dst, err := s.HostLA.Host(1)
	if err != nil {
		t.Fatal(err)
	}
	s.EdgeLA.Node.AddAddr(dst)
	var arrived simnet.NodeStats
	_ = arrived
	gotAt := time.Duration(-1)
	start := s.B.W.Now()
	s.EdgeLA.Node.SetHandler(func(data []byte) {
		gotAt = time.Duration(s.B.W.Now() - start)
	})

	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte("baseline"))
	udp := &packet.UDP{SrcPort: 1, DstPort: 2}
	src, _ := s.HostNY.Host(1)
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64, Src: src, Dst: dst}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, buf.Len())
	copy(raw, buf.Bytes())
	s.EdgeNY.Node.Inject(raw)
	s.Run(time.Second)

	if gotAt < 0 {
		t.Fatal("packet did not arrive")
	}
	// NTT trunk ~36.6ms plus sub-ms access/DC links.
	if gotAt < 36*time.Millisecond || gotAt > 38*time.Millisecond {
		t.Fatalf("NY->LA delay via default = %v, want ~36.7ms (NTT)", gotAt)
	}
	// NTT transited the packet.
	if s.NTT.Node.Stats.Forwarded == 0 {
		t.Fatal("NTT did not forward the packet")
	}
}

func TestScenarioSuppressionExposesAlternatePaths(t *testing.T) {
	s := mustVultr(t, ScenarioConfig{Seed: 3})
	converge(s)

	probe := addr.MustParsePrefix("2001:db8:111::/48")
	// NY announces; LA observes — this is one round of the discovery
	// loop done by hand, for each successive suppression set.
	steps := []struct {
		suppress []bgp.Community
		want     string
	}{
		{nil, "NTT"},
		{[]bgp.Community{bgp.NoExportTo(bgp.ASNTT)}, "Telia"},
		{[]bgp.Community{bgp.NoExportTo(bgp.ASNTT), bgp.NoExportTo(bgp.ASTelia)}, "GTT"},
		{[]bgp.Community{bgp.NoExportTo(bgp.ASNTT), bgp.NoExportTo(bgp.ASTelia), bgp.NoExportTo(bgp.ASGTT)}, "Cogent"},
	}
	for _, step := range steps {
		s.EdgeNY.Speaker.Originate(probe, step.suppress...)
		s.Run(3 * time.Minute)
		best := s.EdgeLA.Speaker.Best(probe)
		if best == nil {
			t.Fatalf("no route with suppression %v", step.suppress)
		}
		if got := ProviderNameForPath(best.Path); got != step.want {
			t.Fatalf("suppression %v -> path via %s (%v), want %s",
				step.suppress, got, best.Path, step.want)
		}
	}

	// Suppressing all four kills reachability (termination condition).
	s.EdgeNY.Speaker.Originate(probe,
		bgp.NoExportTo(bgp.ASNTT), bgp.NoExportTo(bgp.ASTelia),
		bgp.NoExportTo(bgp.ASGTT), bgp.NoExportTo(bgp.ASCogent))
	s.Run(3 * time.Minute)
	if best := s.EdgeLA.Speaker.Best(probe); best != nil {
		t.Fatalf("still reachable via %v with all transits suppressed", best.Path)
	}
}

func TestScenarioReversePathsIncludeLevel3(t *testing.T) {
	s := mustVultr(t, ScenarioConfig{Seed: 4})
	converge(s)

	probe := addr.MustParsePrefix("2001:db8:222::/48")
	s.EdgeLA.Speaker.Originate(probe,
		bgp.NoExportTo(bgp.ASNTT), bgp.NoExportTo(bgp.ASTelia), bgp.NoExportTo(bgp.ASGTT))
	s.Run(3 * time.Minute)
	best := s.EdgeNY.Speaker.Best(probe)
	if best == nil {
		t.Fatal("no route with NTT/Telia/GTT suppressed")
	}
	if got := ProviderNameForPath(best.Path); got != "Level3" {
		t.Fatalf("NY->LA 4th path via %s (%v), want Level3", got, best.Path)
	}
}

func TestScenarioClockOffsets(t *testing.T) {
	s := mustVultr(t, ScenarioConfig{Seed: 5})
	offNY := s.EdgeNY.Node.Clock().Offset()
	offLA := s.EdgeLA.Node.Clock().Offset()
	if offNY == offLA {
		t.Fatal("edge clocks are synchronized; scenario must model skew")
	}
	s2 := mustVultr(t, ScenarioConfig{Seed: 5, ClockOffsetNY: time.Second, ClockOffsetLA: 2 * time.Second})
	if s2.EdgeNY.Node.Clock().Offset() != time.Second {
		t.Fatal("clock offset override ignored")
	}
}

func TestProviderNameForPath(t *testing.T) {
	cases := []struct {
		path bgp.Path
		want string
	}{
		{bgp.Path{bgp.ASVultr, bgp.ASNTT, bgp.ASVultr}, "NTT"},
		{bgp.Path{bgp.ASVultr, bgp.ASNTT, bgp.ASCogent, bgp.ASVultr}, "Cogent"},
		{bgp.Path{bgp.ASGTT, bgp.ASVultr}, "GTT"},
		{bgp.Path{bgp.ASVultr, bgp.ASLevel3, bgp.ASVultr}, "Level3"},
		{bgp.Path{bgp.ASVultr, 9999, bgp.ASVultr}, "AS9999"},
		{bgp.Path{}, "direct"},
	}
	for _, c := range cases {
		if got := ProviderNameForPath(c.path); got != c.want {
			t.Fatalf("ProviderNameForPath(%v) = %s, want %s", c.path, got, c.want)
		}
	}
}

func TestTrunkHandles(t *testing.T) {
	s := mustVultr(t, ScenarioConfig{Seed: 6})
	for _, name := range []string{"NTT", "Telia", "GTT", "Level3"} {
		if s.TrunkToLA[name] == nil {
			t.Fatalf("TrunkToLA[%s] missing", name)
		}
	}
	for _, name := range []string{"NTT", "Telia", "GTT", "Cogent"} {
		if s.TrunkToNY[name] == nil {
			t.Fatalf("TrunkToNY[%s] missing", name)
		}
	}
	// The shapers must actually steer the right direction: raise GTT's
	// NY->LA trunk and verify a NY->LA packet over GTT slows down.
	s.TrunkToLA["GTT"].Shaper().SetOffset(100 * time.Millisecond)
	if s.TrunkToLA["GTT"].Shaper().Offset() != 100*time.Millisecond {
		t.Fatal("shaper offset not applied")
	}
}

func TestWireDefaultsAndDefaultRoute(t *testing.T) {
	b := NewBuilder(7)
	x := b.AddAS("x", 1, 1, 0)
	y := b.AddAS("y", 2, 2, 0)
	link, sx, sy := b.Wire(x, y, WireOpts{RelAB: bgp.RelPeer})
	if sx.Relation() != bgp.RelPeer || sy.Relation() != bgp.RelPeer {
		t.Fatal("peer relation not symmetric")
	}
	if err := DefaultRoute(x, link); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := x.Node.LookupRoute(netip.MustParseAddr("2001:db8::1")); !ok {
		t.Fatal("default route missing")
	}
	// A link not attached to the AS is an error, not a panic.
	z := b.AddAS("z", 3, 3, 0)
	other, _, _ := b.Wire(x, y, WireOpts{RelAB: bgp.RelPeer})
	if err := DefaultRoute(z, other); err == nil {
		t.Fatal("DefaultRoute accepted a detached link")
	}
	b.Eng().Run(10 * time.Second)
	if sx.State() != bgp.StateEstablished {
		t.Fatalf("session state %v", sx.State())
	}
	if b.AS("x") != x || b.AS("nope") != nil {
		t.Fatal("AS lookup broken")
	}
}
