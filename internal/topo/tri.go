package topo

import (
	"fmt"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
	"tango/internal/simnet"
)

// TriScenario extends the deployment toward the paper's §6 "From Tango of
// 2 to Tango of N": three sites (NY, CHI, LA) whose POPs attach to
// *different* subsets of three transit providers:
//
//	ny:  NTT, Telia
//	chi: NTT, Telia, GTT
//	la:  NTT, GTT
//
// NY and LA share only NTT, so the direct NY<->LA pair exposes exactly
// one wide-area path — the situation §2 motivates, where a pair alone has
// nothing to optimize over. CHI shares a fast provider with each: a
// RON-like overlay composed of pairwise Tango instances (NY<->CHI,
// CHI<->LA) gains path diversity no single pair has, and routes around
// NTT incidents that the direct pair must simply suffer.
//
// Provider delays use a radial model: provider P's backbone is a hub and
// each attached POP sits at a per-site radius scaled by a per-provider
// factor (NTT slowest, GTT fastest), so the P-path delay between two
// sites is the sum of their scaled radii plus jitter.
type TriScenario struct {
	B *Builder

	// POPs, keyed by site name ("ny", "chi", "la").
	POPs map[string]*AS
	// Edges holds the per-pair Tango servers, keyed by "<site>:<peer>"
	// (e.g. Edges["ny:la"] pairs with Edges["la:ny"]). One server per
	// relationship, as in "more PoPs of the same network" (§6).
	Edges map[string]*AS
	// Providers by name.
	Providers map[string]*AS

	// Trunk[site][provider] is the line carrying traffic from the
	// provider's hub toward that site; incident injection targets
	// these. Only attached providers are present.
	Trunk map[string]map[string]*simnet.Line

	// HostPrefix / Block / Probe prefixes per edge key.
	HostPrefix map[string]addr.Prefix
	Block      map[string]addr.Prefix
	Probe      map[string]addr.Prefix
}

// NewTriScenario builds the three-site deployment with pairwise Tango
// servers for the pairs (ny,la), (ny,chi), (chi,la).
func NewTriScenario(seed int64) *TriScenario {
	b := NewBuilder(seed)
	t := &TriScenario{
		B:          b,
		POPs:       map[string]*AS{},
		Edges:      map[string]*AS{},
		Providers:  map[string]*AS{},
		Trunk:      map[string]map[string]*simnet.Line{},
		HostPrefix: map[string]addr.Prefix{},
		Block:      map[string]addr.Prefix{},
		Probe:      map[string]addr.Prefix{},
	}

	type site struct {
		name      string
		radius    time.Duration
		clockOff  time.Duration
		providers []string
	}
	sites := []site{
		{"ny", 14 * time.Millisecond, 1700 * time.Millisecond, []string{"NTT", "Telia"}},
		{"chi", 6 * time.Millisecond, -400 * time.Millisecond, []string{"NTT", "Telia", "GTT"}},
		{"la", 14100 * time.Microsecond, -900 * time.Millisecond, []string{"NTT", "GTT"}},
	}
	provs := []struct {
		name  string
		asn   bgp.ASN
		scale float64
		std   time.Duration
	}{
		{"NTT", bgp.ASNTT, 1.30, 100 * time.Microsecond},
		{"Telia", bgp.ASTelia, 1.11, 330 * time.Microsecond},
		{"GTT", bgp.ASGTT, 1.0, 10 * time.Microsecond},
	}

	for i, p := range provs {
		t.Providers[p.name] = b.AddAS(p.name, p.asn, uint32(21+i), 0)
	}

	// POPs are distinct regional networks (an open overlay across
	// organizations, not one cloud), so no allowas-in is needed.
	popASN := map[string]bgp.ASN{"ny": 30101, "chi": 30102, "la": 30103}
	for i, s := range sites {
		pop := b.AddAS("pop-"+s.name, popASN[s.name], uint32(11+i), 0)
		t.POPs[s.name] = pop
		t.Trunk[s.name] = map[string]*simnet.Line{}
		for _, pname := range s.providers {
			var pp *struct {
				name  string
				asn   bgp.ASN
				scale float64
				std   time.Duration
			}
			for j := range provs {
				if provs[j].name == pname {
					pp = &provs[j]
				}
			}
			radial := time.Duration(float64(s.radius) * pp.scale / 2)
			dm := simnet.GaussianDelay{
				Floor: radial,
				Mean:  radial + radial/100 + 50*time.Microsecond,
				Std:   pp.std,
			}
			lnk, _, _ := b.Wire(pop, t.Providers[pname], WireOpts{
				RelAB:           bgp.RelProvider,
				DelayAB:         dm, // POP -> hub radial
				DelayBA:         dm, // hub -> POP radial
				MRAI:            5 * time.Second,
				StripPrivateA2B: true,
				ScrubA2B:        true,
			})
			t.Trunk[s.name][pname] = lnk.LineFrom(t.Providers[pname].Node)
		}
	}

	// Per-pair edge servers from consecutive private ASNs.
	blockAl := addr.NewAlloc(addr.MustParsePrefix("2001:db8:4000::/36"))
	pairs := [][2]string{{"ny", "la"}, {"ny", "chi"}, {"chi", "la"}}
	dc := simnet.FixedDelay(200 * time.Microsecond)
	edgeASN := bgp.ASN(64700)
	for _, pr := range pairs {
		for k := 0; k < 2; k++ {
			siteName, peer := pr[k], pr[1-k]
			key := siteName + ":" + peer
			edgeASN++
			var off time.Duration
			for _, s := range sites {
				if s.name == siteName {
					off = s.clockOff
				}
			}
			edge := b.AddAS("edge-"+key, edgeASN, uint32(100+len(t.Edges)), off)
			t.Edges[key] = edge
			lnk, _, _ := b.Wire(edge, t.POPs[siteName], WireOpts{
				RelAB:   bgp.RelProvider,
				DelayAB: dc, DelayBA: dc,
				SessionDelay: time.Millisecond,
				MRAI:         time.Second,
			})
			DefaultRoute(edge, lnk)
			t.Block[key] = blockAl.MustNextSubnet(44)
			t.HostPrefix[key] = blockAl.MustNextSubnet(48)
			t.Probe[key] = blockAl.MustNextSubnet(48)
			edge.Speaker.Originate(t.HostPrefix[key])
		}
	}
	return t
}

// Run advances virtual time by d.
func (t *TriScenario) Run(d time.Duration) { t.B.W.Run(t.B.W.Now() + d) }

// Edge returns the server at site paired with peer.
func (t *TriScenario) Edge(site, peer string) *AS {
	e, ok := t.Edges[site+":"+peer]
	if !ok {
		panic(fmt.Sprintf("topo: no edge %s:%s", site, peer))
	}
	return e
}

// TriProviderName labels providers for the tri scenario's POP ASNs.
func TriProviderName(asn bgp.ASN) string {
	switch asn {
	case bgp.ASNTT:
		return "NTT"
	case bgp.ASTelia:
		return "Telia"
	case bgp.ASGTT:
		return "GTT"
	}
	return fmt.Sprintf("AS%d", asn)
}
