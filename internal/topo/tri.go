package topo

import (
	"fmt"
	"time"

	"tango/internal/bgp"
)

// TriScenario is the three-site instantiation of the mesh (the paper's
// §6 "From Tango of 2 to Tango of N"): NY, CHI, LA, whose POPs attach to
// *different* subsets of three transit providers:
//
//	ny:  NTT, Telia
//	chi: NTT, Telia, GTT
//	la:  NTT, GTT
//
// NY and LA share only NTT, so the direct NY<->LA pair exposes exactly
// one wide-area path — the situation §2 motivates, where a pair alone has
// nothing to optimize over. CHI shares a fast provider with each: a
// RON-like overlay composed of pairwise Tango instances (NY<->CHI,
// CHI<->LA) gains path diversity no single pair has, and routes around
// NTT incidents that the direct pair must simply suffer.
//
// Provider delays use the radial model (see RadialMeshConfig): NTT is the
// slowest backbone, GTT the fastest.
type TriScenario = MeshScenario

// TriConfig returns the tri deployment's MeshConfig: three sites,
// heterogeneous provider attachment, all three pairs deployed.
func TriConfig(seed int64) MeshConfig {
	provs := []RadialProvider{
		{"NTT", bgp.ASNTT, 1.30, 100 * time.Microsecond},
		{"Telia", bgp.ASTelia, 1.11, 330 * time.Microsecond},
		{"GTT", bgp.ASGTT, 1.0, 10 * time.Microsecond},
	}
	sites := []RadialSite{
		{"ny", 14 * time.Millisecond, 1700 * time.Millisecond, []string{"NTT", "Telia"}},
		{"chi", 6 * time.Millisecond, -400 * time.Millisecond, []string{"NTT", "Telia", "GTT"}},
		{"la", 14100 * time.Microsecond, -900 * time.Millisecond, []string{"NTT", "GTT"}},
	}
	pairs := [][2]string{{"ny", "la"}, {"ny", "chi"}, {"chi", "la"}}
	return RadialMeshConfig(seed, provs, sites, pairs)
}

// NewTriScenario builds the three-site deployment with pairwise Tango
// servers for the pairs (ny,la), (ny,chi), (chi,la).
func NewTriScenario(seed int64) (*TriScenario, error) {
	return NewMeshScenario(TriConfig(seed))
}

// TriProviderName labels providers for the tri scenario's POP ASNs.
func TriProviderName(asn bgp.ASN) string {
	switch asn {
	case bgp.ASNTT:
		return "NTT"
	case bgp.ASTelia:
		return "Telia"
	case bgp.ASGTT:
		return "GTT"
	}
	return fmt.Sprintf("AS%d", asn)
}
