package topo

import (
	"testing"
	"time"

	"tango/internal/bgp"
	"tango/internal/control"
)

func mustTri(t *testing.T, seed int64) *TriScenario {
	t.Helper()
	s, err := NewTriScenario(seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustEdge(t *testing.T, s *TriScenario, site, peer string) *AS {
	t.Helper()
	e, err := s.Edge(site, peer)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTriScenarioStructure(t *testing.T) {
	s := mustTri(t, 1)
	if len(s.POPs) != 3 || len(s.Providers) != 3 || len(s.Edges) != 6 {
		t.Fatalf("structure: %d POPs, %d providers, %d edges",
			len(s.POPs), len(s.Providers), len(s.Edges))
	}
	// Heterogeneous attachment.
	if len(s.Trunk["ny"]) != 2 || len(s.Trunk["chi"]) != 3 || len(s.Trunk["la"]) != 2 {
		t.Fatalf("trunks: ny=%d chi=%d la=%d", len(s.Trunk["ny"]), len(s.Trunk["chi"]), len(s.Trunk["la"]))
	}
	if s.Trunk["ny"]["GTT"] != nil || s.Trunk["la"]["Telia"] != nil {
		t.Fatal("unexpected provider attachment")
	}
	if mustEdge(t, s, "ny", "la") == nil {
		t.Fatal("edge lookup failed")
	}
	if _, err := s.Edge("ny", "nowhere"); err == nil {
		t.Fatal("unknown edge did not error")
	}
	if !s.Adjacent("ny", "chi") || s.Adjacent("ny", "nowhere") {
		t.Fatal("Adjacent wrong")
	}
}

func TestMeshConfigValidation(t *testing.T) {
	bad := TriConfig(1)
	bad.Pairs = append(bad.Pairs, MeshPair{A: "ny", B: "atlantis"})
	if _, err := NewMeshScenario(bad); err == nil {
		t.Fatal("pair with unknown site accepted")
	}
	bad = TriConfig(1)
	bad.Sites[0].Attach[0].Provider = "nope"
	if _, err := NewMeshScenario(bad); err == nil {
		t.Fatal("attachment to unknown provider accepted")
	}
	bad = TriConfig(1)
	bad.Pairs = append(bad.Pairs, bad.Pairs[0])
	if _, err := NewMeshScenario(bad); err == nil {
		t.Fatal("duplicate pair accepted")
	}
	bad = TriConfig(1)
	bad.Pairs[0].B = bad.Pairs[0].A
	if _, err := NewMeshScenario(bad); err == nil {
		t.Fatal("self-pair accepted")
	}
	bad = TriConfig(1)
	bad.Peerings = append(bad.Peerings, MeshPeering{A: "NTT", B: "nope"})
	if _, err := NewMeshScenario(bad); err == nil {
		t.Fatal("peering with unknown provider accepted")
	}
}

func triDiscover(t *testing.T, s *TriScenario, a, b string) []control.DiscoveredPath {
	t.Helper()
	d := &control.Discoverer{
		Announcer: mustEdge(t, s, b, a).Speaker,
		Observer:  mustEdge(t, s, a, b).Speaker,
		Probe:     s.Probe[b+":"+a],
		POPAS:     s.POPs[b].ASN,
		NameFor:   TriProviderName,
		RoundWait: 90 * time.Second,
	}
	var got []control.DiscoveredPath
	d.Run(func(paths []control.DiscoveredPath) { got = paths })
	s.Run(15 * time.Minute)
	return got
}

func TestTriScenarioPathDiversity(t *testing.T) {
	s := mustTri(t, 2)
	s.Run(5 * time.Minute)

	// NY<->LA share only NTT: exactly one path.
	direct := triDiscover(t, s, "ny", "la")
	if len(direct) != 1 || direct[0].ProviderName != "NTT" {
		t.Fatalf("ny->la paths = %v, want [NTT]", direct)
	}
	// NY<->CHI share NTT and Telia.
	nyChi := triDiscover(t, s, "ny", "chi")
	if len(nyChi) != 2 {
		t.Fatalf("ny->chi paths = %v", nyChi)
	}
	// CHI<->LA share NTT and GTT.
	chiLa := triDiscover(t, s, "chi", "la")
	if len(chiLa) != 2 {
		t.Fatalf("chi->la paths = %v", chiLa)
	}
	seen := map[string]bool{}
	for _, p := range append(nyChi, chiLa...) {
		seen[p.ProviderName] = true
	}
	if !seen["Telia"] || !seen["GTT"] || !seen["NTT"] {
		t.Fatalf("overlay providers = %v", seen)
	}
}

func TestTriProviderName(t *testing.T) {
	if TriProviderName(bgp.ASNTT) != "NTT" || TriProviderName(bgp.ASGTT) != "GTT" ||
		TriProviderName(bgp.ASTelia) != "Telia" || TriProviderName(9999) != "AS9999" {
		t.Fatal("TriProviderName wrong")
	}
}

func TestTriScenarioClockOffsets(t *testing.T) {
	s := mustTri(t, 3)
	offNY := mustEdge(t, s, "ny", "la").Node.Clock().Offset()
	offNY2 := mustEdge(t, s, "ny", "chi").Node.Clock().Offset()
	offLA := mustEdge(t, s, "la", "ny").Node.Clock().Offset()
	if offNY != offNY2 {
		t.Fatal("servers in the same site must share the site clock offset")
	}
	if offNY == offLA {
		t.Fatal("sites must have distinct clock offsets")
	}
}
