package topo

import (
	"testing"
	"time"

	"tango/internal/bgp"
	"tango/internal/control"
)

func TestTriScenarioStructure(t *testing.T) {
	s := NewTriScenario(1)
	if len(s.POPs) != 3 || len(s.Providers) != 3 || len(s.Edges) != 6 {
		t.Fatalf("structure: %d POPs, %d providers, %d edges",
			len(s.POPs), len(s.Providers), len(s.Edges))
	}
	// Heterogeneous attachment.
	if len(s.Trunk["ny"]) != 2 || len(s.Trunk["chi"]) != 3 || len(s.Trunk["la"]) != 2 {
		t.Fatalf("trunks: ny=%d chi=%d la=%d", len(s.Trunk["ny"]), len(s.Trunk["chi"]), len(s.Trunk["la"]))
	}
	if s.Trunk["ny"]["GTT"] != nil || s.Trunk["la"]["Telia"] != nil {
		t.Fatal("unexpected provider attachment")
	}
	if s.Edge("ny", "la") == nil {
		t.Fatal("edge lookup failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown edge did not panic")
		}
	}()
	s.Edge("ny", "nowhere")
}

func triDiscover(t *testing.T, s *TriScenario, a, b string) []control.DiscoveredPath {
	t.Helper()
	keyA, keyB := a+":"+b, b+":"+a
	d := &control.Discoverer{
		Announcer: s.Edge(b, a).Speaker,
		Observer:  s.Edge(a, b).Speaker,
		Probe:     s.Probe[keyB],
		POPAS:     s.POPs[b].ASN,
		NameFor:   TriProviderName,
		RoundWait: 90 * time.Second,
	}
	_ = keyA
	var got []control.DiscoveredPath
	d.Run(func(paths []control.DiscoveredPath) { got = paths })
	s.Run(15 * time.Minute)
	return got
}

func TestTriScenarioPathDiversity(t *testing.T) {
	s := NewTriScenario(2)
	s.Run(5 * time.Minute)

	// NY<->LA share only NTT: exactly one path.
	direct := triDiscover(t, s, "ny", "la")
	if len(direct) != 1 || direct[0].ProviderName != "NTT" {
		t.Fatalf("ny->la paths = %v, want [NTT]", direct)
	}
	// NY<->CHI share NTT and Telia.
	nyChi := triDiscover(t, s, "ny", "chi")
	if len(nyChi) != 2 {
		t.Fatalf("ny->chi paths = %v", nyChi)
	}
	// CHI<->LA share NTT and GTT.
	chiLa := triDiscover(t, s, "chi", "la")
	if len(chiLa) != 2 {
		t.Fatalf("chi->la paths = %v", chiLa)
	}
	seen := map[string]bool{}
	for _, p := range append(nyChi, chiLa...) {
		seen[p.ProviderName] = true
	}
	if !seen["Telia"] || !seen["GTT"] || !seen["NTT"] {
		t.Fatalf("overlay providers = %v", seen)
	}
}

func TestTriProviderName(t *testing.T) {
	if TriProviderName(bgp.ASNTT) != "NTT" || TriProviderName(bgp.ASGTT) != "GTT" ||
		TriProviderName(bgp.ASTelia) != "Telia" || TriProviderName(9999) != "AS9999" {
		t.Fatal("TriProviderName wrong")
	}
}

func TestTriScenarioClockOffsets(t *testing.T) {
	s := NewTriScenario(3)
	offNY := s.Edge("ny", "la").Node.Clock().Offset()
	offNY2 := s.Edge("ny", "chi").Node.Clock().Offset()
	offLA := s.Edge("la", "ny").Node.Clock().Offset()
	if offNY != offNY2 {
		t.Fatal("servers in the same site must share the site clock offset")
	}
	if offNY == offLA {
		t.Fatal("sites must have distinct clock offsets")
	}
}
