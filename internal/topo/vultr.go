package topo

import (
	"fmt"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
	"tango/internal/simnet"
)

// ProviderProfile calibrates one transit provider's trunk behaviour. The
// numbers are fit to what the paper reports for the NY/LA pair (§5 and
// Figure 4): GTT has a 28 ms floor with almost no jitter, the NTT default
// runs ~30% above GTT's mean, Telia sits in between with 0.33 ms rolling
// jitter, and the fourth path in each direction is a little slower still.
type ProviderProfile struct {
	Name  string
	ASN   bgp.ASN
	Floor time.Duration
	Mean  time.Duration
	Std   time.Duration
}

// Trunk returns the provider's one-way trunk delay model.
func (p ProviderProfile) Trunk() simnet.DelayModel {
	return simnet.GaussianDelay{Floor: p.Floor, Mean: p.Mean, Std: p.Std}
}

// Default provider calibration (see DESIGN.md, experiments E2/E3).
var (
	ProfileNTT    = ProviderProfile{Name: "NTT", ASN: bgp.ASNTT, Floor: 36200 * time.Microsecond, Mean: 36600 * time.Microsecond, Std: 100 * time.Microsecond}
	ProfileTelia  = ProviderProfile{Name: "Telia", ASN: bgp.ASTelia, Floor: 30800 * time.Microsecond, Mean: 31300 * time.Microsecond, Std: 330 * time.Microsecond}
	ProfileGTT    = ProviderProfile{Name: "GTT", ASN: bgp.ASGTT, Floor: 28 * time.Millisecond, Mean: 28150 * time.Microsecond, Std: 10 * time.Microsecond}
	ProfileCogent = ProviderProfile{Name: "Cogent", ASN: bgp.ASCogent, Floor: 35200 * time.Microsecond, Mean: 35700 * time.Microsecond, Std: 200 * time.Microsecond}
	ProfileLevel3 = ProviderProfile{Name: "Level3", ASN: bgp.ASLevel3, Floor: 29200 * time.Microsecond, Mean: 29600 * time.Microsecond, Std: 150 * time.Microsecond}
)

// Scenario is the paper's deployment: two Vultr datacenters (NY and LA),
// a server with a private-ASN BIRD session in each, and the five transit
// providers observed in §4.1, with an NTT–Cogent peering supplying the
// fourth LA→NY path.
type Scenario struct {
	B *Builder

	EdgeNY, EdgeLA   *AS // the Tango servers (private ASNs)
	VultrNY, VultrLA *AS // Vultr border routers, both AS 20473
	NTT, Telia, GTT  *AS
	Cogent, Level3   *AS

	// TrunkToLA[name] is the line carrying NY->LA traffic for that
	// provider (the direction Figure 4 plots); TrunkToNY the reverse.
	// Event injection reaches these lines' Shapers.
	TrunkToLA map[string]*simnet.Line
	TrunkToNY map[string]*simnet.Line

	// Address plan.
	BlockNY, BlockLA addr.Prefix // institutional space per site for tunnel prefixes
	HostNY, HostLA   addr.Prefix // host-addressing prefixes (announced plainly)
}

// ScenarioConfig tweaks the Vultr scenario.
type ScenarioConfig struct {
	Seed int64
	// ClockOffsetNY/LA model the unsynchronised server clocks. The
	// defaults are deliberately large and asymmetric.
	ClockOffsetNY, ClockOffsetLA time.Duration
	// MRAI for all core sessions (default 5 s).
	MRAI time.Duration
	// Profiles override the default provider calibration when non-nil.
	Profiles []ProviderProfile
}

// edge ASNs (RFC 6996 private, stripped by Vultr on export).
const (
	ASEdgeNY bgp.ASN = 65001
	ASEdgeLA bgp.ASN = 65002
)

// NewVultrScenario builds the deployment.
func NewVultrScenario(cfg ScenarioConfig) *Scenario {
	if cfg.ClockOffsetNY == 0 && cfg.ClockOffsetLA == 0 {
		cfg.ClockOffsetNY = 1700 * time.Millisecond
		cfg.ClockOffsetLA = -900 * time.Millisecond
	}
	b := NewBuilder(cfg.Seed)
	s := &Scenario{
		B:         b,
		TrunkToLA: make(map[string]*simnet.Line),
		TrunkToNY: make(map[string]*simnet.Line),
		BlockNY:   addr.MustParsePrefix("2001:db8:100::/44"),
		BlockLA:   addr.MustParsePrefix("2001:db8:200::/44"),
		HostNY:    addr.MustParsePrefix("2001:db8:a00::/48"),
		HostLA:    addr.MustParsePrefix("2001:db8:b00::/48"),
	}

	s.EdgeNY = b.AddAS("edge-ny", ASEdgeNY, 101, cfg.ClockOffsetNY)
	s.EdgeLA = b.AddAS("edge-la", ASEdgeLA, 102, cfg.ClockOffsetLA)
	s.VultrNY = b.AddAS("vultr-ny", bgp.ASVultr, 11, 0)
	s.VultrLA = b.AddAS("vultr-la", bgp.ASVultr, 12, 0)

	profs := cfg.Profiles
	if profs == nil {
		profs = []ProviderProfile{ProfileNTT, ProfileTelia, ProfileGTT, ProfileCogent, ProfileLevel3}
	}
	byName := map[string]ProviderProfile{}
	for _, p := range profs {
		byName[p.Name] = p
	}

	s.NTT = b.AddAS("ntt", bgp.ASNTT, 21, 0)
	s.Telia = b.AddAS("telia", bgp.ASTelia, 22, 0)
	s.GTT = b.AddAS("gtt", bgp.ASGTT, 23, 0)
	s.Cogent = b.AddAS("cogent", bgp.ASCogent, 24, 0)
	s.Level3 = b.AddAS("level3", bgp.ASLevel3, 25, 0)

	// Server <-> Vultr border: the paper's BIRD eBGP session over the
	// DC fabric. Tiny data-plane delay; Vultr strips the private ASN
	// and scrubs its action communities when re-exporting to the core
	// (configured on the vultr<->transit wires below).
	dcLink := simnet.FixedDelay(200 * time.Microsecond)
	lnNY, _, _ := b.Wire(s.EdgeNY, s.VultrNY, WireOpts{
		RelAB:   bgp.RelProvider,
		DelayAB: dcLink, DelayBA: dcLink,
		SessionDelay: time.Millisecond,
		MRAI:         time.Second,
	})
	lnLA, _, _ := b.Wire(s.EdgeLA, s.VultrLA, WireOpts{
		RelAB:   bgp.RelProvider,
		DelayAB: dcLink, DelayBA: dcLink,
		SessionDelay: time.Millisecond,
		MRAI:         time.Second,
	})
	DefaultRoute(s.EdgeNY, lnNY)
	DefaultRoute(s.EdgeLA, lnLA)

	mrai := cfg.MRAI
	if mrai == 0 {
		mrai = 5 * time.Second
	}
	access := simnet.FixedDelay(50 * time.Microsecond)

	// wireTransit connects a Vultr POP to a provider: the access
	// direction (POP -> provider) is near-zero; the trunk direction
	// (provider -> POP) carries the provider's cross-country profile.
	wireTransit := func(pop *AS, prov *AS, prof ProviderProfile, trunkMap map[string]*simnet.Line) {
		lnk, _, _ := b.Wire(pop, prov, WireOpts{
			RelAB:   bgp.RelProvider, // provider provides transit to the POP
			DelayAB: access,
			DelayBA: prof.Trunk(),
			MRAI:    mrai,
			// The POP strips the tenant's private ASN and scrubs
			// action communities when announcing to the core.
			StripPrivateA2B: true,
			ScrubA2B:        true,
			// Both POPs share AS 20473: accept paths containing it.
			AllowOwnASA: true,
		})
		trunkMap[prof.Name] = lnk.LineFrom(prov.Node)
	}

	// NY-side transits: NTT, Telia, GTT, Cogent.
	wireTransit(s.VultrNY, s.NTT, byName["NTT"], s.TrunkToNY)
	wireTransit(s.VultrNY, s.Telia, byName["Telia"], s.TrunkToNY)
	wireTransit(s.VultrNY, s.GTT, byName["GTT"], s.TrunkToNY)
	wireTransit(s.VultrNY, s.Cogent, byName["Cogent"], s.TrunkToNY)
	// LA-side transits: NTT, Telia, GTT, Level3.
	wireTransit(s.VultrLA, s.NTT, byName["NTT"], s.TrunkToLA)
	wireTransit(s.VultrLA, s.Telia, byName["Telia"], s.TrunkToLA)
	wireTransit(s.VultrLA, s.GTT, byName["GTT"], s.TrunkToLA)
	wireTransit(s.VultrLA, s.Level3, byName["Level3"], s.TrunkToLA)

	// NTT <-> Cogent settlement-free peering: supplies the LA->NY
	// "NTT and Cogent" path the paper observed once NY's announcements
	// to NTT, Telia, and GTT are suppressed. The peering hop adds a
	// few ms on top of Cogent's trunk.
	b.Wire(s.NTT, s.Cogent, WireOpts{
		RelAB:   bgp.RelPeer,
		DelayAB: simnet.FixedDelay(4 * time.Millisecond),
		DelayBA: simnet.FixedDelay(4 * time.Millisecond),
		MRAI:    mrai,
	})
	// NTT <-> Level3 peering: the mirror-image hop for the NY->LA
	// direction, whose fourth path enters LA through Level3.
	b.Wire(s.NTT, s.Level3, WireOpts{
		RelAB:   bgp.RelPeer,
		DelayAB: simnet.FixedDelay(4 * time.Millisecond),
		DelayBA: simnet.FixedDelay(4 * time.Millisecond),
		MRAI:    mrai,
	})

	// Host-addressing prefixes ride plain BGP (no communities): they
	// give the sites baseline Internet connectivity over the default
	// path — the "without Tango" baseline in the experiments.
	s.EdgeNY.Speaker.Originate(s.HostNY)
	s.EdgeLA.Speaker.Originate(s.HostLA)

	return s
}

// Run advances the scenario's virtual time by d.
func (s *Scenario) Run(d time.Duration) {
	s.B.W.Run(s.B.W.Now() + d)
}

// ProviderNameForPath names the wide-area path a route takes, using the
// transit AS adjacent to the destination's Vultr POP — the convention the
// paper uses ("NTT and Cogent (we refer to this as Cogent)").
func ProviderNameForPath(path bgp.Path) string {
	names := map[bgp.ASN]string{
		bgp.ASNTT: "NTT", bgp.ASTelia: "Telia", bgp.ASGTT: "GTT",
		bgp.ASCogent: "Cogent", bgp.ASLevel3: "Level3",
	}
	// The path (seen from the source edge) reads
	// [providers..., 20473(dest POP)] after private-ASN stripping, or
	// [20473(src POP), providers..., 20473] when learned through the
	// local POP. The provider adjacent to the *final* 20473 names it.
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == bgp.ASVultr {
			continue
		}
		if n, ok := names[path[i]]; ok {
			return n
		}
		return fmt.Sprintf("AS%d", path[i])
	}
	return "direct"
}
