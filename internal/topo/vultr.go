package topo

import (
	"fmt"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
	"tango/internal/simnet"
)

// ProviderProfile calibrates one transit provider's trunk behaviour. The
// numbers are fit to what the paper reports for the NY/LA pair (§5 and
// Figure 4): GTT has a 28 ms floor with almost no jitter, the NTT default
// runs ~30% above GTT's mean, Telia sits in between with 0.33 ms rolling
// jitter, and the fourth path in each direction is a little slower still.
type ProviderProfile struct {
	Name  string
	ASN   bgp.ASN
	Floor time.Duration
	Mean  time.Duration
	Std   time.Duration
}

// Trunk returns the provider's one-way trunk delay model.
func (p ProviderProfile) Trunk() simnet.DelayModel {
	return simnet.GaussianDelay{Floor: p.Floor, Mean: p.Mean, Std: p.Std}
}

// Default provider calibration (see DESIGN.md, experiments E2/E3).
var (
	ProfileNTT    = ProviderProfile{Name: "NTT", ASN: bgp.ASNTT, Floor: 36200 * time.Microsecond, Mean: 36600 * time.Microsecond, Std: 100 * time.Microsecond}
	ProfileTelia  = ProviderProfile{Name: "Telia", ASN: bgp.ASTelia, Floor: 30800 * time.Microsecond, Mean: 31300 * time.Microsecond, Std: 330 * time.Microsecond}
	ProfileGTT    = ProviderProfile{Name: "GTT", ASN: bgp.ASGTT, Floor: 28 * time.Millisecond, Mean: 28150 * time.Microsecond, Std: 10 * time.Microsecond}
	ProfileCogent = ProviderProfile{Name: "Cogent", ASN: bgp.ASCogent, Floor: 35200 * time.Microsecond, Mean: 35700 * time.Microsecond, Std: 200 * time.Microsecond}
	ProfileLevel3 = ProviderProfile{Name: "Level3", ASN: bgp.ASLevel3, Floor: 29200 * time.Microsecond, Mean: 29600 * time.Microsecond, Std: 150 * time.Microsecond}
)

// Scenario is the paper's deployment: two Vultr datacenters (NY and LA),
// a server with a private-ASN BIRD session in each, and the five transit
// providers observed in §4.1, with an NTT–Cogent peering supplying the
// fourth LA→NY path. It is the two-site special case of the mesh.
type Scenario struct {
	*MeshScenario

	EdgeNY, EdgeLA   *AS // the Tango servers (private ASNs)
	VultrNY, VultrLA *AS // Vultr border routers, both AS 20473
	NTT, Telia, GTT  *AS
	Cogent, Level3   *AS

	// TrunkToLA[name] is the line carrying NY->LA traffic for that
	// provider (the direction Figure 4 plots); TrunkToNY the reverse.
	// Event injection reaches these lines' Shapers.
	TrunkToLA map[string]*simnet.Line
	TrunkToNY map[string]*simnet.Line

	// Address plan.
	BlockNY, BlockLA addr.Prefix // institutional space per site for tunnel prefixes
	HostNY, HostLA   addr.Prefix // host-addressing prefixes (announced plainly)
}

// ScenarioConfig tweaks the Vultr scenario.
type ScenarioConfig struct {
	Seed int64
	// Shards forwards to MeshConfig.Shards (0 = classic single-engine
	// network). The Vultr topology's 50 µs access links merge every node
	// into one partition, so a sharded Vultr run exercises the
	// coordinator's coupled path end to end while remaining trivially
	// worker-count invariant.
	Shards int
	// ClockOffsetNY/LA model the unsynchronised server clocks. The
	// defaults are deliberately large and asymmetric.
	ClockOffsetNY, ClockOffsetLA time.Duration
	// MRAI for all core sessions (default 5 s).
	MRAI time.Duration
	// Profiles override the default provider calibration when non-nil.
	Profiles []ProviderProfile
}

// edge ASNs (RFC 6996 private, stripped by Vultr on export).
const (
	ASEdgeNY bgp.ASN = 65001
	ASEdgeLA bgp.ASN = 65002
)

// VultrConfig returns the Vultr deployment's MeshConfig.
func VultrConfig(cfg ScenarioConfig) MeshConfig {
	if cfg.ClockOffsetNY == 0 && cfg.ClockOffsetLA == 0 {
		cfg.ClockOffsetNY = 1700 * time.Millisecond
		cfg.ClockOffsetLA = -900 * time.Millisecond
	}
	profs := cfg.Profiles
	if profs == nil {
		profs = []ProviderProfile{ProfileNTT, ProfileTelia, ProfileGTT, ProfileCogent, ProfileLevel3}
	}
	byName := map[string]ProviderProfile{}
	var providers []MeshProvider
	for i, p := range profs {
		byName[p.Name] = p
		providers = append(providers, MeshProvider{
			Name:     p.Name,
			NodeName: strLower(p.Name),
			ASN:      p.ASN,
			RouterID: uint32(21 + i),
		})
	}
	// The access direction (POP -> provider) is near-zero; the trunk
	// direction (provider -> POP) carries the cross-country profile.
	access := simnet.FixedDelay(50 * time.Microsecond)
	attach := func(names ...string) []MeshAttachment {
		var out []MeshAttachment
		for _, n := range names {
			out = append(out, MeshAttachment{Provider: n, Access: access, Trunk: byName[n].Trunk()})
		}
		return out
	}
	return MeshConfig{
		Seed:   cfg.Seed,
		Shards: cfg.Shards,
		MRAI:   cfg.MRAI,
		Sites: []MeshSite{
			{
				Name: "ny", ClockOffset: cfg.ClockOffsetNY,
				POPName: "vultr-ny", POPASN: bgp.ASVultr, POPRouterID: 11,
				// Both POPs share AS 20473: accept paths containing it.
				AllowOwnAS: true,
				Attach:     attach("NTT", "Telia", "GTT", "Cogent"),
			},
			{
				Name: "la", ClockOffset: cfg.ClockOffsetLA,
				POPName: "vultr-la", POPASN: bgp.ASVultr, POPRouterID: 12,
				AllowOwnAS: true,
				Attach:     attach("NTT", "Telia", "GTT", "Level3"),
			},
		},
		Providers: providers,
		Pairs: []MeshPair{{
			A: "ny", B: "la",
			SideA: MeshPairSide{
				EdgeName: "edge-ny", EdgeASN: ASEdgeNY, RouterID: 101,
				Block: addr.MustParsePrefix("2001:db8:100::/44"),
				Host:  addr.MustParsePrefix("2001:db8:a00::/48"),
				Probe: addr.MustParsePrefix("2001:db8:1f0::/48"),
			},
			SideB: MeshPairSide{
				EdgeName: "edge-la", EdgeASN: ASEdgeLA, RouterID: 102,
				Block: addr.MustParsePrefix("2001:db8:200::/44"),
				Host:  addr.MustParsePrefix("2001:db8:b00::/48"),
				Probe: addr.MustParsePrefix("2001:db8:2f0::/48"),
			},
		}},
		Peerings: []MeshPeering{
			// NTT <-> Cogent settlement-free peering: supplies the LA->NY
			// "NTT and Cogent" path the paper observed once NY's
			// announcements to NTT, Telia, and GTT are suppressed.
			{A: "NTT", B: "Cogent"},
			// NTT <-> Level3: the mirror-image hop for NY->LA, whose
			// fourth path enters LA through Level3.
			{A: "NTT", B: "Level3"},
		},
	}
}

// NewVultrScenario builds the deployment.
func NewVultrScenario(cfg ScenarioConfig) (*Scenario, error) {
	m, err := NewMeshScenario(VultrConfig(cfg))
	if err != nil {
		return nil, err
	}
	s := &Scenario{
		MeshScenario: m,
		EdgeNY:       m.Edges["ny:la"],
		EdgeLA:       m.Edges["la:ny"],
		VultrNY:      m.POPs["ny"],
		VultrLA:      m.POPs["la"],
		NTT:          m.Providers["NTT"],
		Telia:        m.Providers["Telia"],
		GTT:          m.Providers["GTT"],
		Cogent:       m.Providers["Cogent"],
		Level3:       m.Providers["Level3"],
		TrunkToNY:    m.Trunk["ny"],
		TrunkToLA:    m.Trunk["la"],
		BlockNY:      m.Block["ny:la"],
		BlockLA:      m.Block["la:ny"],
		HostNY:       m.HostPrefix["ny:la"],
		HostLA:       m.HostPrefix["la:ny"],
	}
	return s, nil
}

// strLower lowercases ASCII letters (provider node names).
func strLower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// ProviderNameForPath names the wide-area path a route takes, using the
// transit AS adjacent to the destination's Vultr POP — the convention the
// paper uses ("NTT and Cogent (we refer to this as Cogent)").
func ProviderNameForPath(path bgp.Path) string {
	names := map[bgp.ASN]string{
		bgp.ASNTT: "NTT", bgp.ASTelia: "Telia", bgp.ASGTT: "GTT",
		bgp.ASCogent: "Cogent", bgp.ASLevel3: "Level3",
	}
	// The path (seen from the source edge) reads
	// [providers..., 20473(dest POP)] after private-ASN stripping, or
	// [20473(src POP), providers..., 20473] when learned through the
	// local POP. The provider adjacent to the *final* 20473 names it.
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == bgp.ASVultr {
			continue
		}
		if n, ok := names[path[i]]; ok {
			return n
		}
		return fmt.Sprintf("AS%d", path[i])
	}
	return "direct"
}
