package topo

import (
	"fmt"
	"time"

	"tango/internal/addr"
	"tango/internal/bgp"
)

// WideMeshConfig builds the E12 scale topology: n sites on the radial
// delay model, every site attached to all sixteen transit providers, and
// pairs deployed along a ring with fixed chord offsets. At the default 64
// sites this yields 320 pairs sharing 16 providers each — 10,240
// provisioned tunnels — while keeping the pair count (the quadratic cost
// driver: every deployed edge server carries a BGP table) two orders of
// magnitude below a full clique.
//
// Every radial floor is at least 4 ms (minimum radius 8 ms, fastest
// provider scale 1.0), so each site clusters into its own partition and
// the sharded lookahead is 4 ms.
func WideMeshConfig(seed int64, n int) MeshConfig {
	provs := make([]RadialProvider, 16)
	names := make([]string, 16)
	for p := range provs {
		names[p] = fmt.Sprintf("P%02d", p)
		provs[p] = RadialProvider{
			Name:  names[p],
			ASN:   bgp.ASN(60001 + p),
			Scale: 1.0 + 0.02*float64(p),
			Std:   time.Duration(10+15*p) * time.Microsecond,
		}
	}
	sites := make([]RadialSite, n)
	for i := range sites {
		sites[i] = RadialSite{
			Name:        fmt.Sprintf("s%02d", i),
			Radius:      8*time.Millisecond + time.Duration(i%16)*750*time.Microsecond,
			ClockOffset: time.Duration((i*7)%13-6) * time.Millisecond,
			Providers:   names,
		}
	}
	// Ring plus chords: offsets chosen coprime-ish so the pair graph stays
	// connected and spreads traffic; offsets ≥ n/2 would duplicate pairs
	// and are skipped at small n.
	var pairs [][2]string
	seen := map[[2]string]bool{}
	for _, off := range []int{1, 3, 9, 19, 27} {
		if off >= (n+1)/2 {
			continue
		}
		for i := 0; i < n; i++ {
			a, b := sites[i].Name, sites[(i+off)%n].Name
			key := [2]string{min(a, b), max(a, b)}
			if seen[key] {
				continue
			}
			seen[key] = true
			pairs = append(pairs, [2]string{a, b})
		}
	}
	cfg := RadialMeshConfig(seed, provs, sites, pairs)
	// The default /36 block only feeds 128 pairs; the wide mesh deploys
	// hundreds, each edge consuming a /44 plus two /48s.
	cfg.EdgeBlockBase = addr.MustParsePrefix("3000::/24")
	return cfg
}
