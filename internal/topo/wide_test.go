package topo

import (
	"reflect"
	"testing"
	"time"
)

func TestWideMeshConfigShape(t *testing.T) {
	cfg := WideMeshConfig(7, 64)
	if len(cfg.Providers) != 16 {
		t.Fatalf("providers: %d, want 16", len(cfg.Providers))
	}
	if len(cfg.Sites) != 64 {
		t.Fatalf("sites: %d, want 64", len(cfg.Sites))
	}
	// Ring plus chords at offsets {1,3,9,19,27}: all are below 64/2 and
	// distinct, so no dedup fires and each contributes exactly n pairs.
	if len(cfg.Pairs) != 320 {
		t.Fatalf("pairs: %d, want 320", len(cfg.Pairs))
	}
	for _, site := range cfg.Sites {
		if len(site.Attach) != 16 {
			t.Fatalf("site %s attaches to %d providers, want 16", site.Name, len(site.Attach))
		}
	}
	if cfg.EdgeBlockBase.String() != "3000::/24" {
		t.Fatalf("edge block %s, want the widened 3000::/24", cfg.EdgeBlockBase)
	}
	if !reflect.DeepEqual(cfg.Pairs, WideMeshConfig(7, 64).Pairs) {
		t.Fatal("same seed must reproduce the same pair list")
	}
}

func TestWideMeshConfigSmallRingDedups(t *testing.T) {
	// At n=6 only offsets 1 (6 pairs) and... 3 >= (6+1)/2 is skipped, so
	// the ring alone survives: 6 unique pairs, no duplicates.
	cfg := WideMeshConfig(1, 6)
	if len(cfg.Pairs) != 6 {
		t.Fatalf("6-site ring: %d pairs, want 6", len(cfg.Pairs))
	}
	seen := map[[2]string]bool{}
	for _, p := range cfg.Pairs {
		key := [2]string{min(p.A, p.B), max(p.A, p.B)}
		if seen[key] {
			t.Fatalf("duplicate pair %s<->%s", p.A, p.B)
		}
		seen[key] = true
	}
	// n=8: offset 3 < 4.5 joins, contributing 8 more unique chords.
	if got := len(WideMeshConfig(1, 8).Pairs); got != 16 {
		t.Fatalf("8-site ring+chord3: %d pairs, want 16", got)
	}
}

func TestWideMeshPartitionsSitePerShard(t *testing.T) {
	// Every radial floor is ≥ 8 ms (scale ≥ 1.0 halves to a 4 ms one-way
	// minimum), above the 1 ms cut floor: the partitioner must keep every
	// site and provider separate and derive the 4 ms lookahead.
	n := 10
	p := MeshPartition(WideMeshConfig(3, n))
	if p.Parts != n+16 {
		t.Fatalf("partitions: %d, want %d (sites+providers)", p.Parts, n+16)
	}
	if p.Lookahead != 4*time.Millisecond {
		t.Fatalf("lookahead: %v, want 4ms", p.Lookahead)
	}
}
