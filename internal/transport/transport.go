// Package transport defines the I/O boundary between the Tango stack and
// whatever carries its packets. The paper's prototype runs the
// encap/probe/decide pipeline as eBPF on real hosts; this reproduction
// grew up on a simulated network. Endpoint is the contract both worlds
// satisfy: internal/simnet's Node is the virtual-time backend the
// experiments and CI run on, and internal/transport/udp is the wall-clock
// backend that carries the same encapsulated frames over real UDP
// sockets, so two tangod processes can run the identical discovery/probe/
// steering stack over loopback or a LAN.
//
// # Contract
//
// Everything the simulator used to provide implicitly is explicit here,
// because a second implementation exists and must be held to it (the
// conformance suite in transporttest checks every clause against every
// backend):
//
//   - Delivery. A frame whose outer destination is owned by the endpoint
//     (AddAddr) is handed to the installed Handler. The data slice is a
//     borrow, valid only until the handler returns; consumers that keep
//     bytes must copy them.
//   - Ordering. Frames injected back-to-back toward the same destination
//     are delivered in injection order when the path applies equal
//     per-frame delay. Neither backend reorders on its own; only an
//     explicit delay/loss model (simnet) or the real network may.
//   - Loss. Inject never blocks and never reports per-frame errors:
//     like the wire, a transport is lossy and the stack above measures
//     rather than assumes. Undeliverable frames (no route, no owner) are
//     counted and dropped, never an error.
//   - Buffers. InjectBuf takes ownership of the pooled buffer; the
//     backend releases it exactly once when the frame is consumed
//     (delivered, transmitted, or dropped). Buffers never cross a
//     process boundary — a backend that serializes onto a wire copies
//     first and releases the lease locally. Inject copies; the caller
//     keeps its slice.
//   - Time. Clock() is the node-local wall clock Tango timestamps with;
//     Now() and Schedule() expose the endpoint's event time base. On the
//     simulated backend that base is virtual time; on a socket backend it
//     is wall-clock time driven by a real-time loop. Components written
//     against this surface (tickers, controllers, probers) run unchanged
//     on either.
//
// # Threading
//
// An Endpoint is single-threaded, like the eBPF run-to-completion model
// it stands in for: the Handler, scheduled callbacks, and Inject* all
// execute on the endpoint's event goroutine. Backends that receive from
// an OS socket serialize receptions onto that goroutine themselves.
package transport

import (
	"net/netip"
	"time"

	"tango/internal/packet"
	"tango/internal/sim"
)

// Handler consumes frames delivered locally to an endpoint (the outer
// destination address is owned by the endpoint). The data slice is a
// borrow: it is valid only until the handler returns, so a handler that
// wants to keep bytes must copy them.
type Handler func(data []byte)

// Endpoint is one attachment of the Tango stack to a packet transport:
// the surface internal/dataplane's Switch drives. It is exactly the
// inject/deliver/clock/address surface internal/simnet's Node always had;
// the interface exists so a real-socket backend can stand in for it.
type Endpoint interface {
	// Name labels the endpoint (node name, site name).
	Name() string

	// SetHandler installs the local-delivery callback.
	SetHandler(h Handler)

	// AddAddr marks ip as owned: frames to ip are delivered locally.
	// Claims are refcounted — several tunnels may legitimately share one
	// local address — so an address stays owned until RemoveAddr
	// balances every AddAddr.
	AddAddr(ip netip.Addr)

	// RemoveAddr drops one claim on ip, releasing local delivery once no
	// claims remain. Removing an address that was never added is a no-op.
	RemoveAddr(ip netip.Addr)

	// OwnsAddr reports whether ip is local to this endpoint.
	OwnsAddr(ip netip.Addr) bool

	// Inject originates a frame from this endpoint. The bytes are copied
	// (the caller keeps ownership of data); undeliverable frames are
	// counted and dropped, never an error.
	Inject(data []byte)

	// InjectBuf originates a frame held in a pooled buffer, taking
	// ownership of pb: the transport releases it when the frame is
	// consumed, and the caller must not touch pb afterwards.
	InjectBuf(pb *packet.Buf)

	// Pool returns the buffer pool components originating frames from
	// this endpoint must lease from.
	Pool() *packet.BufPool

	// Clock returns the endpoint's local wall clock (what Tango
	// timestamps carry). Offsets between endpoints are constant-ish and
	// cancel out of path comparisons, per the paper's argument.
	Clock() *sim.Clock

	// Schedule runs fn after d of the endpoint's time (virtual on the
	// simulated backend, wall-clock on a socket backend).
	Schedule(d time.Duration, fn func()) *sim.Event

	// Now returns the endpoint's current event time.
	Now() sim.Time
}

// Dst extracts the outer destination address from an IPv4/IPv6 frame
// without a full decode — the one routing decision a backend makes.
func Dst(data []byte) (netip.Addr, bool) {
	if len(data) < 1 {
		return netip.Addr{}, false
	}
	switch data[0] >> 4 {
	case 6:
		if len(data) < 40 {
			return netip.Addr{}, false
		}
		return netip.AddrFrom16([16]byte(data[24:40])), true
	case 4:
		if len(data) < 20 {
			return netip.Addr{}, false
		}
		return netip.AddrFrom4([4]byte(data[16:20])), true
	}
	return netip.Addr{}, false
}
