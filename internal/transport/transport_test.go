package transport

import (
	"net/netip"
	"testing"
)

func TestDst(t *testing.T) {
	v6 := make([]byte, 40)
	v6[0] = 0x60
	want6 := netip.MustParseAddr("fd00::42")
	d := want6.As16()
	copy(v6[24:40], d[:])
	if got, ok := Dst(v6); !ok || got != want6 {
		t.Fatalf("Dst(v6) = %v, %v", got, ok)
	}

	v4 := make([]byte, 20)
	v4[0] = 0x45
	copy(v4[16:20], []byte{10, 0, 0, 7})
	want4 := netip.MustParseAddr("10.0.0.7")
	if got, ok := Dst(v4); !ok || got != want4 {
		t.Fatalf("Dst(v4) = %v, %v", got, ok)
	}

	for _, bad := range [][]byte{nil, {0x60}, {0x45, 0, 0}, {0x30, 1, 2, 3}, make([]byte, 39)} {
		if _, ok := Dst(bad); ok {
			t.Fatalf("Dst(%v) accepted", bad)
		}
	}
}
