// Package transporttest is the conformance suite for transport.Endpoint
// implementations. Both backends — the simulated node and the UDP
// socket backend — run the same suite from their own test packages, so
// the contract documented in package transport is enforced by tests
// rather than prose: a behaviour difference between the backends is a
// failing test, not a debugging session in a live deployment.
package transporttest

import (
	"net/netip"
	"testing"
	"time"

	"tango/internal/transport"
)

// Harness adapts one backend to the suite. The suite drives the
// endpoint only through transport.Endpoint plus these three hooks, so a
// backend needs no test-only surface to participate.
type Harness struct {
	// EP is the endpoint under test.
	EP transport.Endpoint
	// Do runs fn in the backend's event context (the simulation
	// goroutine, or under the UDP backend's event lock). All Endpoint
	// calls the suite makes happen inside Do.
	Do func(fn func())
	// Sleep lets at least d of endpoint time elapse and every event due
	// within it fire — Network.Run for the simulator, a real sleep for
	// the wall-clock backend.
	Sleep func(d time.Duration)
}

// Factory builds a fresh harness per subtest; cleanup goes through
// t.Cleanup.
type Factory func(t *testing.T) *Harness

// Run executes the conformance suite against the backend built by mk.
func Run(t *testing.T, mk Factory) {
	t.Run("DeliverOwned", func(t *testing.T) { testDeliverOwned(t, mk(t)) })
	t.Run("DeliveryIsBorrow", func(t *testing.T) { testDeliveryIsBorrow(t, mk(t)) })
	t.Run("InjectCopies", func(t *testing.T) { testInjectCopies(t, mk(t)) })
	t.Run("AddrRefcount", func(t *testing.T) { testAddrRefcount(t, mk(t)) })
	t.Run("RemoveAddrStopsDelivery", func(t *testing.T) { testRemoveAddrStopsDelivery(t, mk(t)) })
	t.Run("InjectBufConsumesLease", func(t *testing.T) { testInjectBufConsumesLease(t, mk(t)) })
	t.Run("DoubleReleasePanics", func(t *testing.T) { testDoubleReleasePanics(t, mk(t)) })
	t.Run("DeliveryOrder", func(t *testing.T) { testDeliveryOrder(t, mk(t)) })
	t.Run("ScheduleOrderAndNow", func(t *testing.T) { testScheduleOrderAndNow(t, mk(t)) })
	t.Run("ClockAdvances", func(t *testing.T) { testClockAdvances(t, mk(t)) })
}

// addrA/addrB are endpoint-owned test destinations.
var (
	addrA = netip.MustParseAddr("fd00:7e57::a")
	addrB = netip.MustParseAddr("fd00:7e57::b")
)

// frame builds a minimal IPv6 frame to dst with the given payload — just
// enough header for the backends' outer-destination parse.
func frame(dst netip.Addr, payload []byte) []byte {
	f := make([]byte, 40+len(payload))
	f[0] = 0x60
	f[4] = byte(len(payload) >> 8)
	f[5] = byte(len(payload))
	f[6] = 17 // next header: UDP-ish; the parse does not care
	f[7] = 64 // hop limit
	src := netip.MustParseAddr("fd00:7e57::5").As16()
	copy(f[8:24], src[:])
	d := dst.As16()
	copy(f[24:40], d[:])
	copy(f[40:], payload)
	return f
}

func testDeliverOwned(t *testing.T, h *Harness) {
	var got [][]byte
	h.Do(func() {
		h.EP.SetHandler(func(data []byte) {
			got = append(got, append([]byte(nil), data...))
		})
		h.EP.AddAddr(addrA)
		if !h.EP.OwnsAddr(addrA) {
			t.Fatal("AddAddr did not take")
		}
		h.EP.Inject(frame(addrA, []byte("hello")))
	})
	h.Sleep(10 * time.Millisecond)
	h.Do(func() {
		if len(got) != 1 {
			t.Fatalf("delivered %d frames, want 1", len(got))
		}
		if string(got[0][40:]) != "hello" {
			t.Fatalf("payload = %q, want hello", got[0][40:])
		}
	})
}

// testDeliveryIsBorrow checks the handler's slice is a borrow: mutating
// it must not corrupt later deliveries (each delivery views its own
// buffer bytes).
func testDeliveryIsBorrow(t *testing.T, h *Harness) {
	var payloads []string
	h.Do(func() {
		h.EP.SetHandler(func(data []byte) {
			payloads = append(payloads, string(data[40:]))
			for i := range data {
				data[i] = 0xff // scribble over the borrow
			}
		})
		h.EP.AddAddr(addrA)
		h.EP.Inject(frame(addrA, []byte("one")))
		h.EP.Inject(frame(addrA, []byte("two")))
	})
	h.Sleep(10 * time.Millisecond)
	h.Do(func() {
		if len(payloads) != 2 || payloads[0] != "one" || payloads[1] != "two" {
			t.Fatalf("payloads = %q, want [one two]", payloads)
		}
	})
}

// testInjectCopies checks Inject leaves ownership of data with the
// caller: mutating the slice after Inject must not alter the delivery.
func testInjectCopies(t *testing.T, h *Harness) {
	var got string
	h.Do(func() {
		h.EP.SetHandler(func(data []byte) { got = string(data[40:]) })
		h.EP.AddAddr(addrA)
		f := frame(addrA, []byte("orig"))
		h.EP.Inject(f)
		copy(f[40:], "XXXX")
	})
	h.Sleep(10 * time.Millisecond)
	h.Do(func() {
		if got != "orig" {
			t.Fatalf("delivered payload = %q, want orig (Inject must copy)", got)
		}
	})
}

func testAddrRefcount(t *testing.T, h *Harness) {
	h.Do(func() {
		h.EP.AddAddr(addrA)
		h.EP.AddAddr(addrA) // two tunnels sharing one local address
		h.EP.RemoveAddr(addrA)
		if !h.EP.OwnsAddr(addrA) {
			t.Fatal("address released while one claim remains")
		}
		h.EP.RemoveAddr(addrA)
		if h.EP.OwnsAddr(addrA) {
			t.Fatal("address still owned after claims balanced")
		}
		h.EP.RemoveAddr(addrB) // never added: must be a no-op
		if h.EP.OwnsAddr(addrB) {
			t.Fatal("RemoveAddr of unknown address created ownership")
		}
	})
}

func testRemoveAddrStopsDelivery(t *testing.T, h *Harness) {
	var n int
	h.Do(func() {
		h.EP.SetHandler(func([]byte) { n++ })
		h.EP.AddAddr(addrA)
		h.EP.Inject(frame(addrA, nil))
		h.EP.RemoveAddr(addrA)
		h.EP.Inject(frame(addrA, nil)) // no longer owned: dropped, not delivered
	})
	h.Sleep(10 * time.Millisecond)
	h.Do(func() {
		if n != 1 {
			t.Fatalf("delivered %d frames, want 1 (delivery after RemoveAddr)", n)
		}
	})
}

// testInjectBufConsumesLease checks InjectBuf takes ownership on every
// path — delivery, and drops (unparsable, unroutable) — so the pool's
// lease ledger balances.
func testInjectBufConsumesLease(t *testing.T, h *Harness) {
	h.Do(func() {
		h.EP.SetHandler(func([]byte) {})
		h.EP.AddAddr(addrA)
		pool := h.EP.Pool()

		pb := pool.Get()
		pb.SetBytes(frame(addrA, []byte("deliver")))
		h.EP.InjectBuf(pb)

		pb = pool.Get()
		pb.SetBytes([]byte{0x00, 0x01}) // no parsable outer destination
		h.EP.InjectBuf(pb)

		pb = pool.Get()
		pb.SetBytes(frame(addrB, nil)) // not owned, nowhere to route
		h.EP.InjectBuf(pb)
	})
	h.Sleep(20 * time.Millisecond)
	h.Do(func() {
		s := h.EP.Pool().Stats
		if s.Gets != s.Puts {
			t.Fatalf("pool leases unbalanced: %d gets, %d puts", s.Gets, s.Puts)
		}
	})
}

func testDoubleReleasePanics(t *testing.T, h *Harness) {
	h.Do(func() {
		pb := h.EP.Pool().Get()
		pb.Release()
		defer func() {
			if recover() == nil {
				t.Fatal("second Release did not panic")
			}
		}()
		pb.Release()
	})
}

// testDeliveryOrder checks same-destination frames arrive in injection
// order — the property Tango's sequence-number reordering detection
// calibrates against.
func testDeliveryOrder(t *testing.T, h *Harness) {
	var order []byte
	h.Do(func() {
		h.EP.SetHandler(func(data []byte) { order = append(order, data[40]) })
		h.EP.AddAddr(addrA)
		for i := byte(0); i < 16; i++ {
			h.EP.Inject(frame(addrA, []byte{i}))
		}
	})
	h.Sleep(20 * time.Millisecond)
	h.Do(func() {
		if len(order) != 16 {
			t.Fatalf("delivered %d frames, want 16", len(order))
		}
		for i := byte(0); i < 16; i++ {
			if order[i] != i {
				t.Fatalf("delivery order %v not injection order", order)
			}
		}
	})
}

// testScheduleOrderAndNow checks timers fire in deadline order and that
// a callback observes Now at (or after) its own deadline.
func testScheduleOrderAndNow(t *testing.T, h *Harness) {
	var fired []string
	h.Do(func() {
		start := h.EP.Now()
		h.EP.Schedule(20*time.Millisecond, func() {
			fired = append(fired, "late")
			if h.EP.Now()-start < 20*time.Millisecond {
				t.Errorf("late timer fired at +%v, before its deadline", h.EP.Now()-start)
			}
		})
		h.EP.Schedule(5*time.Millisecond, func() { fired = append(fired, "early") })
	})
	h.Sleep(60 * time.Millisecond)
	h.Do(func() {
		if len(fired) != 2 || fired[0] != "early" || fired[1] != "late" {
			t.Fatalf("timer order = %v, want [early late]", fired)
		}
	})
}

func testClockAdvances(t *testing.T, h *Harness) {
	var before, after int64
	h.Do(func() { before = h.EP.Clock().Now() })
	h.Sleep(15 * time.Millisecond)
	h.Do(func() { after = h.EP.Clock().Now() })
	if after <= before {
		t.Fatalf("clock did not advance: %d -> %d", before, after)
	}
}
