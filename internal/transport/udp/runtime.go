package udp

import (
	"errors"
	"net"
	"net/netip"
	"time"

	"tango/internal/sim"
)

// maxIdle caps how long the run loop sleeps with nothing scheduled, so a
// quiet endpoint's clock never falls far behind the wall.
const maxIdle = 50 * time.Millisecond

// Start launches the wall-clock runtime: the run loop that fires
// scheduled events when their instant arrives in real time, and the read
// loop that serializes socket receptions onto the event world.
func (b *Backend) Start() {
	b.wg.Add(2)
	go b.runLoop()
	go b.readLoop()
}

// Close shuts the backend down: the socket closes (unblocking the read
// loop), the run loop exits, and Close returns once both are done.
// Pending scheduled events are dropped, releasing any buffers they carry
// through the engine's cancel path is unnecessary — the process is going
// away; tests that care about lease balance drain first via Do.
func (b *Backend) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	err := b.conn.Close()
	b.poke()
	b.wg.Wait()
	return err
}

// Do runs fn on the event world: the engine is first advanced to the
// current wall instant (so fn observes fresh Now/Clock readings), fn
// runs with the event lock held, and the run loop is poked so anything
// fn scheduled is considered for the next sleep. This is how goroutines
// outside the runtime — main, tests, HTTP handlers — interact with the
// stack.
func (b *Backend) Do(fn func()) {
	b.mu.Lock()
	b.advanceLocked()
	fn()
	b.mu.Unlock()
	b.poke()
}

// advanceLocked runs the engine up to the current wall instant. mu held.
func (b *Backend) advanceLocked() {
	b.eng.Run(sim.Time(time.Since(b.start)))
}

// poke nudges the run loop to recompute its sleep.
func (b *Backend) poke() {
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// runLoop is the wall-clock analogue of Network.Run: it advances the
// engine whenever the wall clock catches up with the earliest scheduled
// event, sleeping precisely until then (bounded by maxIdle so the
// engine's notion of now tracks the wall even when idle).
func (b *Backend) runLoop() {
	defer b.wg.Done()
	timer := time.NewTimer(maxIdle)
	defer timer.Stop()
	for {
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return
		}
		b.advanceLocked()
		next, ok := b.eng.NextAt()
		b.mu.Unlock()

		d := maxIdle
		if ok {
			if until := time.Until(b.start.Add(time.Duration(next))); until < d {
				d = until
			}
			if d < 0 {
				d = 0
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(d)
		select {
		case <-b.wake:
		case <-timer.C:
		}
	}
}

// readLoop pulls datagrams off the socket and hands each to the event
// world under the lock, advancing the clock first so handlers observe a
// fresh now — the moral equivalent of a link's delivery event firing at
// its arrival instant.
func (b *Backend) readLoop() {
	defer b.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := b.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			b.mu.Lock()
			closed := b.closed
			b.mu.Unlock()
			if closed {
				return
			}
			continue // transient (e.g. ICMP port unreachable surfaced as an error)
		}
		// Normalize 4-in-6 mapped sources so addresses learned from
		// arriving datagrams compare equal to configured ones and write
		// back through an IPv4-bound socket.
		from = netip.AddrPortFrom(from.Addr().Unmap(), from.Port())
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return
		}
		b.advanceLocked()
		b.deliver(from, buf[:n])
		b.mu.Unlock()
		b.poke()
	}
}
