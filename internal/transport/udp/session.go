package udp

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/netip"
	"strings"
	"time"

	"tango/internal/sim"
)

// PathSpec is one wide-area path of a live deployment: the name labels
// the provider it stands in for, and Delay is the emulated one-way
// propagation applied to this endpoint's *outgoing* frames on the path
// (the loopback analogue of the provider's real propagation delay; the
// two directions of a path may differ, as in the paper's measurements).
type PathSpec struct {
	ID    uint8
	Name  string
	Delay time.Duration
}

// ParsePaths parses a "NTT:12ms,GTT:30ms,Cogent:20ms" flag value into
// path specs with IDs assigned in order from 1 — both processes of a
// deployment must therefore list paths in the same order, which the
// session handshake verifies by name.
func ParsePaths(s string) ([]PathSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("udp: empty path spec")
	}
	var out []PathSpec
	for i, part := range strings.Split(s, ",") {
		name, delayStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("udp: path %q: want NAME:DELAY", part)
		}
		d, err := time.ParseDuration(delayStr)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("udp: path %q: bad delay %q", part, delayStr)
		}
		out = append(out, PathSpec{ID: uint8(i + 1), Name: name, Delay: d})
	}
	if len(out) > 200 {
		return nil, fmt.Errorf("udp: %d paths; path IDs are uint8", len(out))
	}
	return out, nil
}

// SiteAddrs derives a site's outer addresses from its name: one switch
// (outer source) address plus one tunnel endpoint per path, all inside a
// site-specific /64 of a ULA block. Deterministic derivation means both
// processes compute each other's addresses from the handshake alone — no
// address configuration beyond the socket.
func SiteAddrs(site string, paths int) (switchAddr netip.Addr, endpoints []netip.Addr) {
	h := fnv.New32a()
	h.Write([]byte(site))
	var a [16]byte
	a[0], a[1] = 0xfd, 0x00
	a[2], a[3] = 0x74, 0x61 // "ta"
	binary.BigEndian.PutUint32(a[4:8], h.Sum32())
	a[14], a[15] = 0xff, 0xfe
	switchAddr = netip.AddrFrom16(a)
	for i := 1; i <= paths; i++ {
		a[14], a[15] = 0, byte(i)
		endpoints = append(endpoints, netip.AddrFrom16(a))
	}
	return switchAddr, endpoints
}

// Peer is the established view of the cooperating endpoint.
type Peer struct {
	Site       string
	Addr       netip.AddrPort // socket address frames are sent to
	SwitchAddr netip.Addr
	Endpoints  []netip.Addr // peer-owned tunnel endpoints, by path ID -1
	Paths      []PathSpec   // peer's outgoing path specs (names match ours)
}

// helloMsg is the control payload both sides exchange. The dialer sends
// type "hello" until acked; the listener replies type "ack" with its own
// body. Both bodies carry the sender's site, path names, switch address,
// and endpoints, so each side can provision tunnels toward the other.
type helloMsg struct {
	Type       string   `json:"type"` // "hello" | "ack"
	Site       string   `json:"site"`
	SwitchAddr string   `json:"switch_addr"`
	Paths      []string `json:"paths"`
	Endpoints  []string `json:"endpoints"`
	DelayNs    []int64  `json:"delay_ns"`
}

// Session negotiates one cooperating pair over the backend's control
// channel: the paper's "statically configured by cooperating endpoints"
// tables, established by a two-message handshake instead of hand-edited
// files. It runs entirely on the backend's event goroutine.
type Session struct {
	// OnEstablished fires exactly once, on the event goroutine, when the
	// peer is known and verified; provision tunnels and start the control
	// loops here.
	OnEstablished func(*Peer)
	// OnError fires on handshake failures (path-set mismatch, give-up).
	OnError func(error)

	b     *Backend
	site  string
	paths []PathSpec

	switchAddr netip.Addr
	endpoints  []netip.Addr

	peer  *Peer
	retx  *sim.Ticker
	tries int
}

// NewSession prepares a session for the given site over b and installs
// its control handler. Call before Start (or inside Do).
func NewSession(b *Backend, site string, paths []PathSpec) *Session {
	s := &Session{b: b, site: site, paths: paths}
	s.switchAddr, s.endpoints = SiteAddrs(site, len(paths))
	b.SetControlHandler(s.onControl)
	return s
}

// SwitchAddr returns the local outer source address.
func (s *Session) SwitchAddr() netip.Addr { return s.switchAddr }

// Endpoints returns the local tunnel endpoint addresses (path ID -1).
func (s *Session) Endpoints() []netip.Addr { return s.endpoints }

// Established reports whether the handshake completed.
func (s *Session) Established() bool { return s.peer != nil }

// Peer returns the established peer, or nil.
func (s *Session) Peer() *Peer { return s.peer }

// maxHelloTries bounds the dialer's retransmissions before giving up.
const maxHelloTries = 100

// Dial starts the handshake toward a listening peer, retransmitting the
// hello every 200ms until acked. Event-goroutine only (use Backend.Do).
func (s *Session) Dial(peer netip.AddrPort) {
	send := func() {
		if s.peer != nil {
			return
		}
		s.tries++
		if s.tries > maxHelloTries {
			s.retx.Stop()
			s.fail(fmt.Errorf("udp: no ack from %s after %d hellos", peer, s.tries-1))
			return
		}
		s.b.SendControl(peer, s.encode("hello"))
	}
	s.retx = sim.NewTicker(s.b.eng, 200*time.Millisecond, func(sim.Time) { send() })
	send()
}

func (s *Session) encode(typ string) []byte {
	m := helloMsg{
		Type:       typ,
		Site:       s.site,
		SwitchAddr: s.switchAddr.String(),
	}
	for _, p := range s.paths {
		m.Paths = append(m.Paths, p.Name)
		m.DelayNs = append(m.DelayNs, int64(p.Delay))
	}
	for _, ep := range s.endpoints {
		m.Endpoints = append(m.Endpoints, ep.String())
	}
	j, err := json.Marshal(m)
	if err != nil {
		panic(err) // static message shape; cannot fail
	}
	return j
}

// onControl consumes one control datagram on the event goroutine.
func (s *Session) onControl(from netip.AddrPort, payload []byte) {
	var m helloMsg
	if err := json.Unmarshal(payload, &m); err != nil {
		s.fail(fmt.Errorf("udp: bad control datagram from %s: %w", from, err))
		return
	}
	switch m.Type {
	case "hello":
		// Listener side. Re-ack duplicate hellos (the first ack may have
		// been lost) but provision only once.
		if s.peer == nil {
			peer, err := s.makePeer(from, &m)
			if err != nil {
				s.fail(err)
				return
			}
			s.establish(peer)
		}
		if s.peer != nil && s.peer.Addr == from {
			s.b.SendControl(from, s.encode("ack"))
		}
	case "ack":
		// Dialer side.
		if s.peer != nil {
			return
		}
		peer, err := s.makePeer(from, &m)
		if err != nil {
			s.fail(err)
			return
		}
		if s.retx != nil {
			s.retx.Stop()
		}
		s.establish(peer)
	default:
		s.fail(fmt.Errorf("udp: unknown control type %q from %s", m.Type, from))
	}
}

// makePeer validates a handshake body against the local path set.
func (s *Session) makePeer(from netip.AddrPort, m *helloMsg) (*Peer, error) {
	if m.Site == s.site {
		return nil, fmt.Errorf("udp: peer %s claims our own site name %q", from, m.Site)
	}
	if len(m.Paths) != len(s.paths) {
		return nil, fmt.Errorf("udp: peer %q has %d paths, we have %d", m.Site, len(m.Paths), len(s.paths))
	}
	for i, name := range m.Paths {
		if name != s.paths[i].Name {
			return nil, fmt.Errorf("udp: path %d is %q at peer %q, %q here", i+1, name, m.Site, s.paths[i].Name)
		}
	}
	if len(m.Endpoints) != len(s.paths) || len(m.DelayNs) != len(s.paths) {
		return nil, fmt.Errorf("udp: peer %q handshake body inconsistent", m.Site)
	}
	sw, err := netip.ParseAddr(m.SwitchAddr)
	if err != nil {
		return nil, fmt.Errorf("udp: peer %q switch addr: %w", m.Site, err)
	}
	p := &Peer{Site: m.Site, Addr: from, SwitchAddr: sw}
	for i, e := range m.Endpoints {
		ip, err := netip.ParseAddr(e)
		if err != nil {
			return nil, fmt.Errorf("udp: peer %q endpoint %d: %w", m.Site, i+1, err)
		}
		p.Endpoints = append(p.Endpoints, ip)
		p.Paths = append(p.Paths, PathSpec{ID: uint8(i + 1), Name: m.Paths[i], Delay: time.Duration(m.DelayNs[i])})
	}
	return p, nil
}

// establish records the peer, installs the frame routes (every peer
// endpoint is reached through the peer's socket, delayed by the local
// outgoing path spec), and fires OnEstablished.
func (s *Session) establish(p *Peer) {
	s.peer = p
	for i, ep := range p.Endpoints {
		s.b.AddRoute(ep, p.Addr, s.paths[i].Delay)
	}
	// The peer's outer source address is routable too, so stray frames
	// toward it (never sent by the current stack) fail loudly at the
	// peer's owned-address check rather than silently here.
	s.b.AddRoute(p.SwitchAddr, p.Addr, 0)
	if s.OnEstablished != nil {
		s.OnEstablished(p)
	}
}

func (s *Session) fail(err error) {
	if s.OnError != nil {
		s.OnError(err)
	}
}
