package udp

import (
	"encoding/json"
	"net/netip"
	"slices"
	"testing"
)

// TestSessionRejectsBadHandshakes drives onControl directly with every
// malformed handshake shape: each must fire OnError and none may
// establish. Accessors are pinned along the way.
func TestSessionRejectsBadHandshakes(t *testing.T) {
	b := newBackend(t, "site-x")
	if b.Name() != "site-x" {
		t.Fatalf("Name() = %q", b.Name())
	}
	if b.Eng() == nil {
		t.Fatal("Eng() returned nil")
	}

	paths, err := ParsePaths("NTT:10ms,GTT:20ms")
	if err != nil {
		t.Fatal(err)
	}
	var errs []error
	var sess *Session
	b.Do(func() {
		sess = NewSession(b, "site-x", paths)
		sess.OnError = func(e error) { errs = append(errs, e) }
	})
	sw, eps := SiteAddrs("site-x", 2)
	if sess.SwitchAddr() != sw {
		t.Fatalf("SwitchAddr() = %v, want %v", sess.SwitchAddr(), sw)
	}
	if !slices.Equal(sess.Endpoints(), eps) {
		t.Fatalf("Endpoints() = %v, want %v", sess.Endpoints(), eps)
	}

	// A well-formed peer body to mutate per case.
	peerSw, peerEps := SiteAddrs("site-y", 2)
	base := func() helloMsg {
		return helloMsg{
			Type:       "hello",
			Site:       "site-y",
			SwitchAddr: peerSw.String(),
			Paths:      []string{"NTT", "GTT"},
			Endpoints:  []string{peerEps[0].String(), peerEps[1].String()},
			DelayNs:    []int64{10e6, 20e6},
		}
	}
	enc := func(m helloMsg) []byte {
		j, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	from := netip.MustParseAddrPort("127.0.0.1:9")

	cases := []struct {
		name    string
		payload []byte
	}{
		{"not json", []byte("{nope")},
		{"unknown type", enc(func() helloMsg { m := base(); m.Type = "bye"; return m }())},
		{"own site name", enc(func() helloMsg { m := base(); m.Site = "site-x"; return m }())},
		{"path count mismatch", enc(func() helloMsg { m := base(); m.Paths = m.Paths[:1]; return m }())},
		{"path name mismatch", enc(func() helloMsg { m := base(); m.Paths = []string{"NTT", "Telia"}; return m }())},
		{"inconsistent body", enc(func() helloMsg { m := base(); m.Endpoints = m.Endpoints[:1]; return m }())},
		{"bad switch addr", enc(func() helloMsg { m := base(); m.SwitchAddr = "pigeon"; return m }())},
		{"bad endpoint addr", enc(func() helloMsg { m := base(); m.Endpoints[1] = "pigeon"; return m }())},
	}
	for _, tc := range cases {
		before := len(errs)
		b.Do(func() { sess.onControl(from, tc.payload) })
		if len(errs) != before+1 {
			t.Errorf("%s: OnError fired %d times, want 1", tc.name, len(errs)-before)
		}
		if sess.Established() || sess.Peer() != nil {
			t.Fatalf("%s: session established from a bad handshake", tc.name)
		}
	}

	// The ack branch rejects bad bodies through the same validator.
	before := len(errs)
	b.Do(func() {
		sess.onControl(from, enc(func() helloMsg { m := base(); m.Type = "ack"; m.Site = "site-x"; return m }()))
	})
	if len(errs) != before+1 || sess.Established() {
		t.Fatal("bad ack body must fail and not establish")
	}

	// A valid hello after all the rejects still establishes.
	b.Do(func() { sess.onControl(from, enc(base())) })
	if !sess.Established() || sess.Peer() == nil || sess.Peer().Site != "site-y" {
		t.Fatalf("valid hello did not establish: %+v", sess.Peer())
	}
}
