// Package udp is the real-socket transport backend: it carries
// Tango-encapped frames — the same outer IPv6+UDP+Tango byte stacks the
// simulator moves between nodes — as payloads of real UDP datagrams, so
// two tangod processes run the identical encap/probe/decide stack over
// loopback or a LAN. It is the "second implementation" of
// transport.Endpoint; the simulator is the first.
//
// Where internal/simnet advances an engine through virtual time, this
// backend drives the same sim.Engine with the wall clock: a run loop
// sleeps until the next scheduled event is due in real time and fires it
// (see runtime.go). Everything written against the Endpoint surface —
// tickers, controllers, probers, reporters — runs unchanged; only the
// meaning of "now" differs.
//
// Outer addresses stay in the frame: the backend routes a frame by its
// outer destination address through a configured table mapping tunnel
// endpoint addresses to real socket addresses (AddRoute), exactly the
// role the simulator's per-node FIB plays. A per-route one-way delay can
// be configured to stand in for wide-area propagation when both ends sit
// on one host — the loopback analogue of `tc netem` on a real deployment,
// and what lets the E8-live experiment reproduce a simulated scenario's
// delay ordering over 127.0.0.1.
package udp

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"tango/internal/obs"
	"tango/internal/packet"
	"tango/internal/sim"
	"tango/internal/transport"
)

// ctlMagic prefixes control datagrams (session handshake) on the shared
// socket. Its first byte's version nibble is 5, which no IPv4/IPv6 frame
// starts with, so control and data traffic cannot be confused.
var ctlMagic = [4]byte{'T', 'N', 'G', 1}

// maxDatagram bounds one received datagram: an MTU-sized inner packet
// plus encapsulation fits many times over; anything larger than a jumbo
// frame is not a Tango datagram.
const maxDatagram = 64 << 10

// Config parameterizes New.
type Config struct {
	// Name labels the endpoint (site name).
	Name string
	// Listen is the UDP address to bind ("127.0.0.1:0" picks a port).
	Listen string
	// Registry receives the backend's instruments; nil creates a private
	// one (counters are always live, so Stats never lies).
	Registry *obs.Registry
}

// Stats is a point-in-time snapshot of the backend's counters.
type Stats struct {
	TxFrames, TxBytes uint64
	RxFrames, RxBytes uint64
	NoRoute           uint64 // outbound frames with no routed destination
	ParseErr          uint64 // frames with no parsable outer destination
	NotOwned          uint64 // arriving frames for addresses not owned here
	WriteErr          uint64
	CtlTx, CtlRx      uint64
}

// route maps one outer destination address to a socket address, with an
// optional emulated one-way propagation delay applied at the sender. It
// doubles as the sim.ArgHandler for its own delayed transmissions, so a
// scheduled send carries no closure.
type route struct {
	b     *Backend
	to    netip.AddrPort
	delay time.Duration
}

// OnSimEvent fires at a delayed frame's departure instant with the owned
// buffer as payload.
func (rt *route) OnSimEvent(arg any) { rt.b.write(rt, arg.(*packet.Buf)) }

// Backend is one endpoint of the UDP transport. It implements
// transport.Endpoint; all Endpoint methods must run on the event
// goroutine (inside Do, a delivery handler, or a scheduled callback),
// mirroring the single-goroutine discipline of the simulated backend.
type Backend struct {
	name string

	// mu serializes the event world: the engine, the owned-address and
	// route tables, and every handler invocation. The run loop, the read
	// loop, and Do all take it; the stack above is therefore effectively
	// single-threaded, like a simnet partition.
	mu    sync.Mutex
	eng   *sim.Engine
	clock *sim.Clock
	pool  *packet.BufPool

	conn  *net.UDPConn
	start time.Time // wall anchor: sim.Time 0 == start

	handler   transport.Handler
	onControl func(from netip.AddrPort, payload []byte)
	owned     map[netip.Addr]int
	routes    map[netip.Addr]*route

	wake   chan struct{}
	closed bool
	wg     sync.WaitGroup

	txFrames, txBytes *obs.Counter
	rxFrames, rxBytes *obs.Counter
	noRoute, parseErr *obs.Counter
	notOwned, wrErr   *obs.Counter
	ctlTx, ctlRx      *obs.Counter
}

// New binds the socket and prepares (but does not start) the backend;
// call Start once the stack is wired.
func New(cfg Config) (*Backend, error) {
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("udp: resolve %q: %w", cfg.Listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udp: listen %q: %w", cfg.Listen, err)
	}
	eng := sim.NewEngine()
	b := &Backend{
		name:   cfg.Name,
		eng:    eng,
		clock:  sim.NewClock(eng, 0, 0),
		pool:   packet.NewBufPool(),
		conn:   conn,
		start:  time.Now(),
		owned:  make(map[netip.Addr]int),
		routes: make(map[netip.Addr]*route),
		wake:   make(chan struct{}, 1),
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	l := obs.L("site", cfg.Name)
	b.txFrames = reg.Counter("tango_transport_tx_frames_total", "Tango frames written to the UDP socket.", l)
	b.txBytes = reg.Counter("tango_transport_tx_bytes_total", "Frame bytes written to the UDP socket.", l)
	b.rxFrames = reg.Counter("tango_transport_rx_frames_total", "Tango frames delivered from the UDP socket.", l)
	b.rxBytes = reg.Counter("tango_transport_rx_bytes_total", "Frame bytes delivered from the UDP socket.", l)
	b.noRoute = reg.Counter("tango_transport_no_route_total", "Outbound frames dropped: destination not routed.", l)
	b.parseErr = reg.Counter("tango_transport_parse_err_total", "Frames dropped: no parsable outer destination.", l)
	b.notOwned = reg.Counter("tango_transport_not_owned_total", "Arriving frames dropped: destination not owned here.", l)
	b.wrErr = reg.Counter("tango_transport_write_err_total", "Socket write failures.", l)
	b.ctlTx = reg.Counter("tango_transport_ctl_tx_total", "Control datagrams sent (session handshake).", l)
	b.ctlRx = reg.Counter("tango_transport_ctl_rx_total", "Control datagrams received (session handshake).", l)
	return b, nil
}

// Addr returns the socket's bound address.
func (b *Backend) Addr() netip.AddrPort { return b.conn.LocalAddr().(*net.UDPAddr).AddrPort() }

// Eng returns the backend's engine: virtual time driven by the wall
// clock. Control components (tickers, controllers) schedule here exactly
// as they would on a simnet partition engine.
func (b *Backend) Eng() *sim.Engine { return b.eng }

// Stats snapshots the backend's counters.
func (b *Backend) Stats() Stats {
	return Stats{
		TxFrames: b.txFrames.Value(), TxBytes: b.txBytes.Value(),
		RxFrames: b.rxFrames.Value(), RxBytes: b.rxBytes.Value(),
		NoRoute: b.noRoute.Value(), ParseErr: b.parseErr.Value(),
		NotOwned: b.notOwned.Value(), WriteErr: b.wrErr.Value(),
		CtlTx: b.ctlTx.Value(), CtlRx: b.ctlRx.Value(),
	}
}

// AddRoute maps an outer destination address to a peer socket address,
// with an emulated one-way delay applied before each transmission
// (0 sends immediately). Event-goroutine only.
func (b *Backend) AddRoute(dst netip.Addr, to netip.AddrPort, delay time.Duration) {
	b.routes[dst] = &route{b: b, to: to, delay: delay}
}

// SetControlHandler installs the consumer for control datagrams (the
// session handshake). Event-goroutine only.
func (b *Backend) SetControlHandler(fn func(from netip.AddrPort, payload []byte)) {
	b.onControl = fn
}

// SendControl writes a control datagram (magic-prefixed payload) to a
// peer socket address.
func (b *Backend) SendControl(to netip.AddrPort, payload []byte) {
	buf := make([]byte, 0, len(ctlMagic)+len(payload))
	buf = append(buf, ctlMagic[:]...)
	buf = append(buf, payload...)
	if _, err := b.conn.WriteToUDPAddrPort(buf, to); err != nil {
		b.wrErr.Inc()
		return
	}
	b.ctlTx.Inc()
}

// --- transport.Endpoint ---

var _ transport.Endpoint = (*Backend)(nil)

// Name returns the endpoint's configured name.
func (b *Backend) Name() string { return b.name }

// SetHandler installs the local-delivery callback.
func (b *Backend) SetHandler(h transport.Handler) { b.handler = h }

// AddAddr marks ip as owned (refcounted, like the simulated node).
func (b *Backend) AddAddr(ip netip.Addr) { b.owned[ip]++ }

// RemoveAddr drops one claim on ip; unknown addresses are a no-op.
func (b *Backend) RemoveAddr(ip netip.Addr) {
	if c, ok := b.owned[ip]; ok {
		if c <= 1 {
			delete(b.owned, ip)
		} else {
			b.owned[ip] = c - 1
		}
	}
}

// OwnsAddr reports whether ip is local to this endpoint.
func (b *Backend) OwnsAddr(ip netip.Addr) bool { return b.owned[ip] > 0 }

// Pool returns the pool outgoing frames must be leased from.
func (b *Backend) Pool() *packet.BufPool { return b.pool }

// Clock returns the endpoint's local clock (wall-clock elapsed since the
// backend started; offsets between processes are constant-ish and cancel
// out of path comparisons).
func (b *Backend) Clock() *sim.Clock { return b.clock }

// Schedule runs fn after d of wall-clock time.
func (b *Backend) Schedule(d time.Duration, fn func()) *sim.Event {
	return b.eng.Schedule(d, fn)
}

// Now returns wall-clock time elapsed since the backend started, as seen
// by the event engine.
func (b *Backend) Now() sim.Time { return b.eng.Now() }

// Inject originates a frame, copying data into a pooled buffer.
func (b *Backend) Inject(data []byte) {
	pb := b.pool.Get()
	pb.SetBytes(data)
	b.InjectBuf(pb)
}

// InjectBuf originates a frame held in a pooled buffer, taking ownership:
// the frame is delivered locally (owned destination), transmitted toward
// its routed peer after the route's emulated delay, or counted and
// dropped. The buffer never crosses the process boundary — transmission
// copies the bytes into the socket and releases the lease here.
func (b *Backend) InjectBuf(pb *packet.Buf) {
	data := pb.Bytes()
	dst, ok := transport.Dst(data)
	if !ok {
		b.parseErr.Inc()
		pb.Release()
		return
	}
	if b.owned[dst] > 0 {
		// Hairpin: a frame for an address owned here never touches the
		// socket, mirroring local delivery on the simulated node.
		b.rxFrames.Inc()
		b.rxBytes.Add(uint64(len(data)))
		if b.handler != nil {
			b.handler(data)
		}
		pb.Release()
		return
	}
	rt := b.routes[dst]
	if rt == nil {
		b.noRoute.Inc()
		pb.Release()
		return
	}
	if rt.delay > 0 {
		// Ownership of pb rides the event; the engine fires it on the
		// run loop when the emulated propagation has elapsed.
		b.eng.ScheduleArg(rt.delay, rt, pb)
		return
	}
	b.write(rt, pb)
}

// write moves a frame onto the wire and releases its buffer.
func (b *Backend) write(rt *route, pb *packet.Buf) {
	data := pb.Bytes()
	if _, err := b.conn.WriteToUDPAddrPort(data, rt.to); err != nil {
		b.wrErr.Inc()
	} else {
		b.txFrames.Inc()
		b.txBytes.Add(uint64(len(data)))
	}
	pb.Release()
}

// deliver consumes one received datagram on the event goroutine (mu
// held, clock advanced): control datagrams go to the session handler,
// frames for owned addresses to the delivery handler, the rest to the
// drop counters. data is a borrow of the read loop's buffer.
func (b *Backend) deliver(from netip.AddrPort, data []byte) {
	if len(data) >= len(ctlMagic) && [4]byte(data[:4]) == ctlMagic {
		b.ctlRx.Inc()
		if b.onControl != nil {
			b.onControl(from, data[len(ctlMagic):])
		}
		return
	}
	dst, ok := transport.Dst(data)
	if !ok {
		b.parseErr.Inc()
		return
	}
	if b.owned[dst] == 0 {
		b.notOwned.Inc()
		return
	}
	b.rxFrames.Inc()
	b.rxBytes.Add(uint64(len(data)))
	if b.handler != nil {
		b.handler(data)
	}
}
