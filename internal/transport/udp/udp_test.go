package udp

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"tango/internal/transport/transporttest"
)

func newBackend(t *testing.T, name string) *Backend {
	t.Helper()
	b, err := New(Config{Name: name, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b.Start()
	t.Cleanup(func() { b.Close() })
	return b
}

// TestEndpointConformance runs the shared transport.Endpoint suite
// against the socket backend — the same tests internal/simnet runs
// against the simulated node.
func TestEndpointConformance(t *testing.T) {
	transporttest.Run(t, func(t *testing.T) *transporttest.Harness {
		b := newBackend(t, "conf")
		return &transporttest.Harness{
			EP:    b,
			Do:    b.Do,
			Sleep: time.Sleep,
		}
	})
}

// waitFor polls cond (under Do) until it holds or the deadline passes.
func waitFor(t *testing.T, b *Backend, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		var ok bool
		b.Do(func() { ok = cond() })
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTwoBackendsExchangeFrames moves real datagrams between two bound
// sockets: a routed frame leaves A, crosses loopback, and is delivered
// by B's handler; an emulated route delay holds the frame back at the
// sender for at least that long.
func TestTwoBackendsExchangeFrames(t *testing.T) {
	a := newBackend(t, "a")
	b := newBackend(t, "b")

	dst := netip.MustParseAddr("fd00:7e57::b1")
	var got []byte
	var at time.Time
	b.Do(func() {
		b.AddAddr(dst)
		b.SetHandler(func(data []byte) {
			got = append([]byte(nil), data...)
			at = time.Now()
		})
	})

	f := mkFrame(dst, []byte("over the wire"))
	sent := time.Now()
	a.Do(func() {
		a.AddRoute(dst, b.Addr(), 30*time.Millisecond)
		a.Inject(f)
	})
	waitFor(t, b, 2*time.Second, "frame delivery", func() bool { return got != nil })

	if string(got[40:]) != "over the wire" {
		t.Fatalf("payload = %q", got[40:])
	}
	if el := at.Sub(sent); el < 30*time.Millisecond {
		t.Fatalf("frame arrived after %v, before the 30ms emulated delay", el)
	}
	if s := a.Stats(); s.TxFrames != 1 {
		t.Fatalf("a tx frames = %d, want 1", s.TxFrames)
	}
	if s := b.Stats(); s.RxFrames != 1 {
		t.Fatalf("b rx frames = %d, want 1", s.RxFrames)
	}

	// A frame for an address B does not own is counted, not delivered.
	a.Do(func() {
		other := netip.MustParseAddr("fd00:7e57::99")
		a.AddRoute(other, b.Addr(), 0)
		a.Inject(mkFrame(other, nil))
	})
	waitFor(t, b, 2*time.Second, "not-owned drop", func() bool { return b.Stats().NotOwned == 1 })
}

// mkFrame builds a minimal IPv6 frame to dst.
func mkFrame(dst netip.Addr, payload []byte) []byte {
	f := make([]byte, 40+len(payload))
	f[0] = 0x60
	f[4], f[5] = byte(len(payload)>>8), byte(len(payload))
	f[6], f[7] = 17, 64
	src := netip.MustParseAddr("fd00:7e57::1").As16()
	copy(f[8:24], src[:])
	d := dst.As16()
	copy(f[24:40], d[:])
	copy(f[40:], payload)
	return f
}

func TestParsePaths(t *testing.T) {
	ps, err := ParsePaths(" NTT:12ms, GTT:30ms,Cogent:20ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []PathSpec{{1, "NTT", 12 * time.Millisecond}, {2, "GTT", 30 * time.Millisecond}, {3, "Cogent", 20 * time.Millisecond}}
	if len(ps) != len(want) {
		t.Fatalf("got %d paths", len(ps))
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("path %d = %+v, want %+v", i, ps[i], want[i])
		}
	}
	for _, bad := range []string{"", "NTT", "NTT:-3ms", "NTT:fast"} {
		if _, err := ParsePaths(bad); err == nil {
			t.Errorf("ParsePaths(%q) accepted", bad)
		}
	}
}

func TestSiteAddrsDeterministicAndDisjoint(t *testing.T) {
	swA, epA := SiteAddrs("alpha", 3)
	swA2, epA2 := SiteAddrs("alpha", 3)
	if swA != swA2 || epA[2] != epA2[2] {
		t.Fatal("SiteAddrs not deterministic")
	}
	swB, epB := SiteAddrs("beta", 3)
	if swA == swB {
		t.Fatal("switch addresses collide across sites")
	}
	seen := map[netip.Addr]bool{swA: true, swB: true}
	for _, ep := range append(epA, epB...) {
		if seen[ep] {
			t.Fatalf("address %s reused", ep)
		}
		seen[ep] = true
	}
}

// TestSessionHandshake establishes a pair over loopback and checks both
// sides converge on matching peer views and installed routes.
func TestSessionHandshake(t *testing.T) {
	paths := []PathSpec{{1, "NTT", 10 * time.Millisecond}, {2, "GTT", 20 * time.Millisecond}}
	a := newBackend(t, "a")
	b := newBackend(t, "b")

	var sa, sb *Session
	b.Do(func() {
		sb = NewSession(b, "site-b", paths)
		sb.OnError = func(err error) { t.Errorf("site-b: %v", err) }
	})
	a.Do(func() {
		sa = NewSession(a, "site-a", paths)
		sa.OnError = func(err error) { t.Errorf("site-a: %v", err) }
		sa.Dial(b.Addr())
	})

	waitFor(t, a, 5*time.Second, "dialer established", func() bool { return sa.Established() })
	waitFor(t, b, 5*time.Second, "listener established", func() bool { return sb.Established() })

	a.Do(func() {
		p := sa.Peer()
		if p.Site != "site-b" {
			t.Errorf("peer site = %q", p.Site)
		}
		wantSw, wantEp := SiteAddrs("site-b", 2)
		if p.SwitchAddr != wantSw || p.Endpoints[1] != wantEp[1] {
			t.Errorf("peer addrs not derived from site name")
		}
		// Routes toward every peer endpoint were installed at establish.
		for _, ep := range p.Endpoints {
			if a.routes[ep] == nil {
				t.Errorf("no route to peer endpoint %s", ep)
			}
		}
		if a.routes[p.Endpoints[0]].delay != 10*time.Millisecond {
			t.Errorf("route delay = %v, want local outgoing path delay", a.routes[p.Endpoints[0]].delay)
		}
	})
	b.Do(func() {
		if sb.Peer().Site != "site-a" {
			t.Errorf("listener peer site = %q", sb.Peer().Site)
		}
	})
}

// TestSessionPathMismatch checks a handshake between endpoints whose
// path sets differ is rejected with an error, not silently established.
func TestSessionPathMismatch(t *testing.T) {
	a := newBackend(t, "a")
	b := newBackend(t, "b")

	errs := make(chan error, 4)
	b.Do(func() {
		s := NewSession(b, "site-b", []PathSpec{{1, "NTT", 0}})
		s.OnError = func(err error) { errs <- err }
		s.OnEstablished = func(*Peer) { t.Error("listener established despite mismatch") }
	})
	a.Do(func() {
		s := NewSession(a, "site-a", []PathSpec{{1, "Cogent", 0}})
		s.Dial(b.Addr())
	})
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no mismatch error")
	}
}

// TestManyRoutedFrames pushes a burst through the delayed-route path to
// exercise the scheduled-transmit machinery under -race.
func TestManyRoutedFrames(t *testing.T) {
	a := newBackend(t, "a")
	b := newBackend(t, "b")
	dst := netip.MustParseAddr("fd00:7e57::b1")
	var n int
	b.Do(func() {
		b.AddAddr(dst)
		b.SetHandler(func([]byte) { n++ })
	})
	const total = 200
	a.Do(func() { a.AddRoute(dst, b.Addr(), time.Millisecond) })
	for i := 0; i < total; i++ {
		a.Do(func() { a.Inject(mkFrame(dst, []byte(fmt.Sprintf("%03d", i)))) })
	}
	// UDP over loopback is lossless in practice, but do not fail the
	// suite on a kernel-dropped datagram: require near-complete delivery.
	waitFor(t, b, 5*time.Second, "burst delivery", func() bool { return n >= total*9/10 })
	a.Do(func() {
		if s := a.Pool().Stats; s.Gets != s.Puts {
			t.Fatalf("sender pool leases unbalanced: %d gets, %d puts", s.Gets, s.Puts)
		}
	})
}
