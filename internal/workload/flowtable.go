package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/netip"
	"sync/atomic"
	"time"

	"tango/internal/dataplane"
	"tango/internal/obs"
	"tango/internal/packet"
	"tango/internal/sim"
)

// The flyweight flow table replaces the per-stream object model at edge
// scale: where an AppGen is a heap object with its own Ticker, a
// sentAt map entry per in-flight packet, and an unbounded record slice,
// a table flow is an index into two packed arrays — a sender-owned
// sendRec and a receiver-owned recvRec — scheduled in bulk on a
// sim.BatchWheel (one engine event drains a whole due-bucket of flows)
// and accounted in bulk through per-class obs histograms. The paper's
// §4.2 scalability claim ("the eBPF data path scales to edge traffic")
// and §5's per-class head-of-line-blocking argument both need traffic
// at this scale; per-stream objects cap out three orders of magnitude
// short of it.
//
// Shard ownership follows PR 6's BindSink discipline, enforced
// structurally: everything a packet emission touches (sendRec, the
// wheel, endpoint templates, the free lists) belongs to the table's
// owner engine — the sending site's partition — and everything a
// delivery touches (that flow's recvRec) belongs to the receiving
// site's partition. A flow slot binds to one endpoint for the table's
// lifetime (free lists are per-endpoint), so across slot reuse a given
// recvRec is only ever touched by one receiving partition. The shared
// per-class counters and histograms are atomic, and their merges
// commute, so totals are identical at every worker count.

// Class enumerates the flyweight traffic classes. Each maps to one of
// the paper's application arguments: VoIP to the jitter-sensitivity
// analysis (E3), video to rate plus head-of-line blocking (E6's
// InOrderModel), bulk to TCP-like throughput traffic.
type Class uint8

const (
	ClassVoIP Class = iota
	ClassVideo
	ClassBulk

	// NumClasses sizes every per-class array.
	NumClasses = 3
)

// String returns the class's label ("voip", "video", "bulk").
func (c Class) String() string {
	switch c {
	case ClassVoIP:
		return "voip"
	case ClassVideo:
		return "video"
	case ClassBulk:
		return "bulk"
	default:
		return fmt.Sprintf("class-%d", uint8(c))
	}
}

// ClassSpec fixes one class's emission behavior.
type ClassSpec struct {
	// Interval is the emission period. For exact periodicity it should
	// be a multiple of the table's wheel granule (minimum interval / 8);
	// other values quantize up, deterministically.
	Interval time.Duration
	// Payload is the inner UDP payload size; at least flowHeaderLen
	// bytes (seq, flow word, virtual send timestamp).
	Payload int
}

// DefaultClasses returns the stock class set: 20 ms / 160 B VoIP
// frames, 10 ms / 1200 B video bursts, 40 ms / 1400 B bulk segments.
func DefaultClasses() [NumClasses]ClassSpec {
	return [NumClasses]ClassSpec{
		ClassVoIP:  {Interval: 20 * time.Millisecond, Payload: 160},
		ClassVideo: {Interval: 10 * time.Millisecond, Payload: 1200},
		ClassBulk:  {Interval: 40 * time.Millisecond, Payload: 1400},
	}
}

// FlowPort is the inner UDP destination port identifying flyweight flow
// traffic at the receiving site (distinct from AppPort so legacy
// generators and flow tables can share a deployment).
const FlowPort = 7002

// Flow packet payload layout (offsets within the inner packet; the
// payload starts at 48 = IPv6 40 + UDP 8):
//
//	[48:52) per-flow sequence number
//	[52:56) flow word: index (22 bits) | class (2 bits) | generation (8 bits)
//	[56:64) virtual send time, nanoseconds
//
// Carrying the send time in the packet is what makes receiver-side
// accounting self-contained: OWD is receiver-now minus the stamp (both
// virtual, so ground truth with no clock offset), and no sender-side
// sentAt map exists at all.
const (
	flowHeaderLen  = 16
	flowIdxBits    = 22
	flowIdxMask    = 1<<flowIdxBits - 1
	flowClassShift = flowIdxBits
	flowGenShift   = flowIdxBits + 2
)

func flowWord(idx int32, c Class, gen uint8) uint32 {
	return uint32(idx) | uint32(c)<<flowClassShift | uint32(gen)<<flowGenShift
}

// flowSrcPort derives a flow's inner UDP source port from its slot
// index: 1024 distinct ports starting clear of the well-known FlowPort
// and the tunnels' outer port range.
func flowSrcPort(i int32) uint16 { return 40000 + uint16(i&1023) }

// sendRec is the sender-owned half of a flow: 12 bytes, touched only by
// the table's owner engine.
type sendRec struct {
	seq       uint32
	emitsLeft uint32
	ep        uint16
	class     uint8
	gen       uint8 // incarnation; stamped into packets so the receiver
	// detects slot reuse (stale in-flight packets of a departed flow)
}

// recvRec is the receiver-owned half: 16 bytes, touched only by the
// flow's endpoint's receiving partition.
type recvRec struct {
	readyAt sim.Time // in-order frontier: max arrival among delivered packets
	rcvNext uint32   // next expected sequence
	gen     uint8
	seen    bool
}

// classCounters aggregate per class. Atomic because receive-side
// increments come from several receiving partitions; addition commutes,
// so totals are shard-invariant.
type classCounters struct {
	sent      atomic.Uint64
	delivered atomic.Uint64
	dups      atomic.Uint64 // duplicates and stale (departed-generation) deliveries
	gaps      atomic.Uint64 // sequence numbers skipped by the in-order frontier
	refused   atomic.Uint64 // Start calls rejected at capacity
}

// FlowClassStats is one class's aggregate counters.
type FlowClassStats struct {
	Sent, Delivered, Dups, Gaps, Refused uint64
}

// flowEndpoint is one (switch, src, dst) a table emits through, with a
// prebuilt inner-packet template per class. src doubles as the table's
// claim filter: several tables can deliver into one site (an E13 mesh
// has one per sending site), and flow indices overlap across tables, so
// a sink claims a packet only when the inner source address matches the
// endpoint the packet's flow index is bound to.
type flowEndpoint struct {
	sw   *dataplane.Switch
	src  [16]byte
	tmpl [NumClasses][]byte
}

// FlowTable is an array-of-structs store of concurrent flows for one
// sending site. Flows are indices, not objects: starting, emitting,
// delivering, and departing a flow allocate nothing in steady state
// (the perf gate enforces 0 allocs/op on the emit and arrive/depart
// paths). Capacity is fixed at construction — the receiver-owned array
// must never be reallocated while receiving partitions hold references
// into it.
type FlowTable struct {
	eng     *sim.Engine
	wheel   *sim.BatchWheel
	classes [NumClasses]ClassSpec

	eps  []flowEndpoint
	send []sendRec
	recv []recvRec

	nextFree []int32 // per-slot free-list link
	freeHead []int32 // per-endpoint free-list head (slots rebind only within an endpoint)
	used     int32   // slots ever allocated
	active   int
	peak     int

	cc         [NumClasses]classCounters
	obsOWD     [NumClasses]*obs.Histogram
	obsInOrder [NumClasses]*obs.Histogram
}

// NewFlowTable builds a table for up to capacity concurrent flows. The
// wheel granule is the minimum class interval divided by 8 (floor 1 µs)
// and the ring horizon four times the maximum interval, so class
// intervals and start staggers below that bound always fit.
func NewFlowTable(eng *sim.Engine, classes [NumClasses]ClassSpec, capacity int) *FlowTable {
	if capacity <= 0 || capacity > flowIdxMask+1 {
		panic(fmt.Sprintf("workload: flow table capacity %d (max %d)", capacity, flowIdxMask+1))
	}
	minIv, maxIv := time.Duration(math.MaxInt64), time.Duration(0)
	for c, spec := range classes {
		if spec.Interval <= 0 {
			panic(fmt.Sprintf("workload: class %v interval %v", Class(c), spec.Interval))
		}
		if spec.Payload < flowHeaderLen {
			panic(fmt.Sprintf("workload: class %v payload %dB cannot carry the %d-byte flow header",
				Class(c), spec.Payload, flowHeaderLen))
		}
		if spec.Interval < minIv {
			minIv = spec.Interval
		}
		if spec.Interval > maxIv {
			maxIv = spec.Interval
		}
	}
	granule := minIv / 8
	if granule < time.Microsecond {
		granule = time.Microsecond
	}
	t := &FlowTable{
		eng:      eng,
		classes:  classes,
		send:     make([]sendRec, capacity),
		recv:     make([]recvRec, capacity),
		nextFree: make([]int32, capacity),
	}
	t.wheel = sim.NewBatchWheel(eng, granule, 4*maxIv, t.emit)
	t.wheel.Reserve(capacity)
	return t
}

// AddEndpoint registers a sending switch with inner src/dst addresses
// and returns the endpoint's index. Wiring-time only (it allocates the
// per-class templates).
func (t *FlowTable) AddEndpoint(sw *dataplane.Switch, src, dst netip.Addr) int {
	ep := flowEndpoint{sw: sw, src: src.As16()}
	for c := range t.classes {
		buf := packet.NewSerializeBuffer()
		pay := packet.Payload(make([]byte, t.classes[c].Payload))
		udp := &packet.UDP{SrcPort: 7000, DstPort: FlowPort}
		// The flow class rides the inner traffic-class byte so the
		// data plane (dataplane.ClassSelector) can steer per class
		// without parsing the Tango payload.
		ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64, TrafficClass: uint8(c), Src: src, Dst: dst}
		if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
			panic(err)
		}
		ep.tmpl[c] = make([]byte, buf.Len())
		copy(ep.tmpl[c], buf.Bytes())
	}
	t.eps = append(t.eps, ep)
	t.freeHead = append(t.freeHead, -1)
	return len(t.eps) - 1
}

// Endpoints returns how many endpoints are registered.
func (t *FlowTable) Endpoints() int { return len(t.eps) }

// Eng returns the table's owner engine — the only engine Start, Stop,
// and StartArrivals may run on.
func (t *FlowTable) Eng() *sim.Engine { return t.eng }

// Capacity returns the table's fixed flow capacity.
func (t *FlowTable) Capacity() int { return len(t.send) }

// Active returns the number of live flows. Peak returns the high-water
// mark. Both are owner-engine state; read them between runs.
func (t *FlowTable) Active() int { return t.active }

// Peak returns the concurrent-flow high-water mark.
func (t *FlowTable) Peak() int { return t.peak }

// Start activates a flow on endpoint ep: class c, a lifetime of emits
// packets at the class interval, the first emission after delay. It
// returns the flow index, or -1 when no slot is available (counted in
// the class's Refused). Must run on the table's owner engine.
func (t *FlowTable) Start(ep int, c Class, emits uint32, delay time.Duration) int32 {
	if emits == 0 {
		panic("workload: FlowTable.Start with zero emits")
	}
	if c >= NumClasses {
		panic(fmt.Sprintf("workload: FlowTable.Start class %d", c))
	}
	var i int32
	if h := t.freeHead[ep]; h >= 0 {
		i = h
		t.freeHead[ep] = t.nextFree[h]
	} else if int(t.used) < len(t.send) {
		i = t.used
		t.used++
		t.send[i].ep = uint16(ep)
	} else {
		t.cc[c].refused.Add(1)
		return -1
	}
	f := &t.send[i]
	f.gen++ // stale in-flight packets of the previous incarnation are detectable
	f.seq = 0
	f.emitsLeft = emits
	f.class = uint8(c)
	t.active++
	if t.active > t.peak {
		t.peak = t.active
	}
	t.wheel.Add(i, t.eng.Now()+sim.Time(delay))
	return i
}

// emit is the wheel's drain callback: stamp the endpoint's class
// template in place and hand it to the switch's normal sender path
// (SendToPeer borrows the slice), then either re-arm or depart.
func (t *FlowTable) emit(now sim.Time, i int32) {
	f := &t.send[i]
	ep := &t.eps[f.ep]
	tmpl := ep.tmpl[f.class]
	// Each flow stamps its own inner source port so hash-based selectors
	// (ECMP-style stickiness hashes addresses+ports) see distinct flows,
	// not one aggregate. The sink identifies flows by the flow word and
	// destination port, never the source port, and the template's UDP
	// checksum is the all-zero "not computed" value, so the in-place
	// rewrite stays consistent.
	binary.BigEndian.PutUint16(tmpl[40:42], flowSrcPort(i))
	binary.BigEndian.PutUint32(tmpl[48:52], f.seq)
	binary.BigEndian.PutUint32(tmpl[52:56], flowWord(i, Class(f.class), f.gen))
	binary.BigEndian.PutUint64(tmpl[56:64], uint64(now))
	f.seq++
	f.emitsLeft--
	t.cc[f.class].sent.Add(1)
	ep.sw.SendToPeer(tmpl)
	if f.emitsLeft == 0 {
		// Depart: the slot returns to its endpoint's free list (never
		// another endpoint's — the receiver partition owning recv[i]
		// must not change across reuse).
		t.nextFree[i] = t.freeHead[f.ep]
		t.freeHead[f.ep] = i
		t.active--
		return
	}
	t.wheel.Add(i, now+t.classes[f.class].Interval)
}

// SinkFor returns a delivery sink bound to the receiving partition's
// engine — the flow-table analogue of AppGen.BindSink. Register it with
// the receiving site's switch (Site.AddSink / DeliverLocal); it claims
// flow-port packets belonging to this table and accounts OWD and
// in-order latency against the receiver's clock, touching only
// receiver-owned and atomic state.
func (t *FlowTable) SinkFor(recvEng *sim.Engine) func(inner []byte) bool {
	return func(inner []byte) bool { return t.sink(recvEng, inner) }
}

func (t *FlowTable) sink(recvEng *sim.Engine, inner []byte) bool {
	if len(inner) < 48+flowHeaderLen || inner[0]>>4 != 6 {
		return false
	}
	if binary.BigEndian.Uint16(inner[42:44]) != FlowPort {
		return false
	}
	w := binary.BigEndian.Uint32(inner[52:56])
	idx := int32(w & flowIdxMask)
	if int(idx) >= len(t.recv) {
		return false // another table's flow
	}
	if len(t.eps) > 0 {
		// A slot's endpoint binding is written once, before its first
		// emission, so reading it here is ordered by packet delivery.
		// Unclaimed slots keep ep 0 and fail the source match below
		// (another table's flow index landing in our range).
		e := int(t.send[idx].ep)
		if e >= len(t.eps) || [16]byte(inner[8:24]) != t.eps[e].src {
			return false
		}
	}
	c := Class(w>>flowClassShift) & 3
	gen := uint8(w >> flowGenShift)
	seq := binary.BigEndian.Uint32(inner[48:52])
	sentAt := sim.Time(binary.BigEndian.Uint64(inner[56:64]))
	now := recvEng.Now()
	owd := now - sentAt

	r := &t.recv[idx]
	if !r.seen || r.gen != gen {
		// First packet of a (re)incarnation. A straggler from the
		// previous generation arriving later is counted as stale (below)
		// rather than resurrected; generations are 8-bit, so aliasing
		// needs 256 reuses of one slot while a packet is in flight.
		if r.seen && int8(gen-r.gen) < 0 {
			t.cc[c].dups.Add(1) // stale: generation older than current
			return true
		}
		r.seen, r.gen = true, gen
		r.rcvNext = seq + 1
		r.readyAt = now
		t.cc[c].delivered.Add(1)
		if seq > 0 {
			t.cc[c].gaps.Add(uint64(seq))
		}
		t.obsOWD[c].Observe(int64(owd))
		t.obsInOrder[c].Observe(int64(owd))
		return true
	}
	switch {
	case seq < r.rcvNext:
		// Duplicate (or a late gap-filler the in-order frontier already
		// skipped — a TCP receiver treats both as spurious).
		t.cc[c].dups.Add(1)
		return true
	case seq == r.rcvNext:
		r.rcvNext++
	default:
		t.cc[c].gaps.Add(uint64(seq - r.rcvNext))
		r.rcvNext = seq + 1
	}
	t.cc[c].delivered.Add(1)
	if now > r.readyAt {
		r.readyAt = now
	}
	t.obsOWD[c].Observe(int64(owd))
	// The streaming in-order model: this packet is usable once every
	// earlier one has arrived (or been skipped), i.e. at the frontier.
	t.obsInOrder[c].Observe(int64(r.readyAt - sentAt))
	return true
}

// Instrument registers the per-class OWD and in-order latency
// histograms (nanoseconds of virtual time, so snapshots are
// shard-invariant) in reg under the site label. Call before traffic
// runs; without it latency goes unobserved (counters still aggregate).
func (t *FlowTable) Instrument(reg *obs.Registry, site string) {
	for c := 0; c < NumClasses; c++ {
		cl := Class(c).String()
		t.obsOWD[c] = reg.Histogram("tango_flow_owd_ns",
			"Per-class one-way delay of delivered flow packets (virtual ns).",
			obs.L("site", site), obs.L("class", cl))
		t.obsInOrder[c] = reg.Histogram("tango_flow_inorder_ns",
			"Per-class in-order (head-of-line) delivery latency (virtual ns).",
			obs.L("site", site), obs.L("class", cl))
	}
}

// OWDHistogram returns the class's one-way-delay histogram (nil before
// Instrument).
func (t *FlowTable) OWDHistogram(c Class) *obs.Histogram { return t.obsOWD[c] }

// InOrderHistogram returns the class's in-order latency histogram (nil
// before Instrument).
func (t *FlowTable) InOrderHistogram(c Class) *obs.Histogram { return t.obsInOrder[c] }

// ClassStats returns the class's aggregate counters. Sums are atomic
// and commute; read between runs for exact totals.
func (t *FlowTable) ClassStats(c Class) FlowClassStats {
	return FlowClassStats{
		Sent:      t.cc[c].sent.Load(),
		Delivered: t.cc[c].delivered.Load(),
		Dups:      t.cc[c].dups.Load(),
		Gaps:      t.cc[c].gaps.Load(),
		Refused:   t.cc[c].refused.Load(),
	}
}

// Totals sums ClassStats across classes.
func (t *FlowTable) Totals() FlowClassStats {
	var out FlowClassStats
	for c := Class(0); c < NumClasses; c++ {
		s := t.ClassStats(c)
		out.Sent += s.Sent
		out.Delivered += s.Delivered
		out.Dups += s.Dups
		out.Gaps += s.Gaps
		out.Refused += s.Refused
	}
	return out
}

// Stop halts all emission: pending wheel buckets are dropped and every
// flow departs. Counters and histograms keep their values.
func (t *FlowTable) Stop() {
	t.wheel.Stop()
	for ep := range t.freeHead {
		t.freeHead[ep] = -1
	}
	for i := int32(0); i < t.used; i++ {
		t.nextFree[i] = t.freeHead[t.send[i].ep]
		t.freeHead[t.send[i].ep] = i
	}
	t.active = 0
}

// ArrivalConfig shapes a seeded flow-arrival process: a fluid base rate
// modulated by a diurnal cycle and a flash-crowd spike. The fluid count
// (rate × quantum, fractional remainder carried) keeps arrivals exactly
// reproducible; randomness picks each arrival's class, endpoint, and
// start stagger.
type ArrivalConfig struct {
	// Rate is the base arrival rate in flows per second of virtual time.
	Rate float64
	// ClassMix weighs class selection (zero vector = uniform).
	ClassMix [NumClasses]float64
	// Emits is each arriving flow's lifetime in packets (default 4).
	Emits uint32
	// DiurnalPeriod, when positive, modulates the rate by
	// 1 + DiurnalAmp·sin(2π·now/period) — the daily load swing.
	DiurnalPeriod time.Duration
	DiurnalAmp    float64
	// FlashFactor, when > 1, multiplies the rate during
	// [FlashAt, FlashAt+FlashFor) — a flash crowd.
	FlashAt     sim.Time
	FlashFor    time.Duration
	FlashFactor float64
	// Quantum is the generator tick (default 10 ms): one engine event
	// per quantum starts that quantum's whole arrival batch.
	Quantum time.Duration
}

// Arrivals is a running arrival process on a table's owner engine.
type Arrivals struct {
	// Started counts flows started; Refused counts arrivals dropped at
	// table capacity.
	Started, Refused uint64

	t    *FlowTable
	rng  *sim.RNG
	cfg  ArrivalConfig
	tick *sim.Ticker
	acc  float64 // fractional arrivals carried between quanta
}

// StartArrivals begins a seeded arrival process driving this table.
// The rng must be dedicated to this process (draw order is part of the
// reproducible state).
func (t *FlowTable) StartArrivals(rng *sim.RNG, cfg ArrivalConfig) *Arrivals {
	if len(t.eps) == 0 {
		panic("workload: StartArrivals on a table with no endpoints")
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 10 * time.Millisecond
	}
	if cfg.Emits == 0 {
		cfg.Emits = 4
	}
	a := &Arrivals{t: t, rng: rng, cfg: cfg}
	a.tick = sim.NewTicker(t.eng, cfg.Quantum, a.step)
	return a
}

// Stop halts the arrival process (flows already started run out their
// lifetimes).
func (a *Arrivals) Stop() { a.tick.Stop() }

func (a *Arrivals) step(now sim.Time) {
	rate := a.cfg.Rate
	if a.cfg.DiurnalPeriod > 0 && a.cfg.DiurnalAmp != 0 {
		phase := 2 * math.Pi * float64(now) / float64(a.cfg.DiurnalPeriod)
		rate *= 1 + a.cfg.DiurnalAmp*math.Sin(phase)
	}
	if a.cfg.FlashFactor > 1 && now >= a.cfg.FlashAt && now < a.cfg.FlashAt+sim.Time(a.cfg.FlashFor) {
		rate *= a.cfg.FlashFactor
	}
	if rate < 0 {
		rate = 0
	}
	a.acc += rate * a.cfg.Quantum.Seconds()
	n := int(a.acc)
	a.acc -= float64(n)
	for k := 0; k < n; k++ {
		c := a.drawClass()
		ep := a.rng.Intn(len(a.t.eps))
		stagger := time.Duration(a.rng.Int63n(int64(a.t.classes[c].Interval)))
		if a.t.Start(ep, c, a.cfg.Emits, stagger) < 0 {
			a.Refused++
			continue
		}
		a.Started++
	}
}

func (a *Arrivals) drawClass() Class {
	total := 0.0
	for _, w := range a.cfg.ClassMix {
		total += w
	}
	if total <= 0 {
		return Class(a.rng.Intn(NumClasses))
	}
	x := a.rng.Float64() * total
	for c, w := range a.cfg.ClassMix {
		if x < w {
			return Class(c)
		}
		x -= w
	}
	return NumClasses - 1
}
