package workload

import (
	"encoding/binary"
	"net/netip"
	"testing"
	"time"

	"tango/internal/obs"
	"tango/internal/sim"
)

// flowNet wires twoSwitchNet plus a flow table on switch A with one
// endpoint, instrumented, with B's delivery hooked to the table's sink.
func flowNet(t *testing.T, capacity int) (*FlowTable, func(d time.Duration)) {
	t.Helper()
	w, swA, swB := twoSwitchNet(t)
	ft := NewFlowTable(w.Eng, DefaultClasses(), capacity)
	ft.AddEndpoint(swA,
		netip.MustParseAddr("2001:db8:aa::1"), netip.MustParseAddr("2001:db8:bb::1"))
	ft.Instrument(obs.NewRegistry(), "a")
	sink := ft.SinkFor(w.Eng)
	swB.DeliverLocal = func(inner []byte) { sink(inner) }
	return ft, func(d time.Duration) { w.Run(w.Eng.Now() + sim.Time(d)) }
}

func TestFlowTableDeliveryGroundTruth(t *testing.T) {
	ft, run := flowNet(t, 64)
	// One flow per class, 10 packets each, started immediately.
	for c := Class(0); c < NumClasses; c++ {
		if idx := ft.Start(0, c, 10, 0); idx < 0 {
			t.Fatalf("class %v refused", c)
		}
	}
	if ft.Active() != 3 {
		t.Fatalf("Active = %d", ft.Active())
	}
	run(2 * time.Second)
	for c := Class(0); c < NumClasses; c++ {
		s := ft.ClassStats(c)
		if s.Sent != 10 || s.Delivered != 10 {
			t.Fatalf("class %v sent/delivered = %d/%d, want 10/10", c, s.Sent, s.Delivered)
		}
		if s.Dups != 0 || s.Gaps != 0 || s.Refused != 0 {
			t.Fatalf("class %v spurious counters: %+v", c, s)
		}
		h := ft.OWDHistogram(c)
		if h.Count() != 10 {
			t.Fatalf("class %v OWD observations = %d", c, h.Count())
		}
		// The lossless 5ms link: every OWD is exactly 5ms of virtual time,
		// so the histogram's whole mass sits in the 5ms log2 bucket and
		// the mean is exact.
		if got := h.Sum() / int64(h.Count()); got != int64(5*time.Millisecond) {
			t.Fatalf("class %v mean OWD = %v, want 5ms ground truth", c, time.Duration(got))
		}
		if io := ft.InOrderHistogram(c); io.Sum() != h.Sum() {
			t.Fatalf("class %v in-order latency diverged on a lossless in-order link", c)
		}
	}
	if ft.Active() != 0 {
		t.Fatalf("Active = %d after all flows ran out", ft.Active())
	}
	if ft.Peak() != 3 {
		t.Fatalf("Peak = %d", ft.Peak())
	}
	tot := ft.Totals()
	if tot.Sent != 30 || tot.Delivered != 30 {
		t.Fatalf("totals %+v", tot)
	}
}

func TestFlowTableEmitCadence(t *testing.T) {
	// VoIP emits every 20ms (a multiple of the wheel granule), so packet
	// k's OWD-stamped send time is start + k*20ms: with a fixed-delay
	// link, distinct arrivals land exactly 20ms apart. Verify via sent
	// counts at two probe times.
	ft, run := flowNet(t, 8)
	ft.Start(0, ClassVoIP, 100, 0)
	run(205 * time.Millisecond)
	if s := ft.ClassStats(ClassVoIP); s.Sent != 11 { // t=0ms..200ms inclusive
		t.Fatalf("sent = %d after 205ms, want 11", s.Sent)
	}
	run(200 * time.Millisecond)
	if s := ft.ClassStats(ClassVoIP); s.Sent != 21 {
		t.Fatalf("sent = %d after 405ms, want 21", s.Sent)
	}
}

func TestFlowTableSlotReuseAndGenerations(t *testing.T) {
	ft, run := flowNet(t, 4)
	first := ft.Start(0, ClassBulk, 1, 0)
	run(time.Second)
	if ft.Active() != 0 {
		t.Fatalf("flow still active")
	}
	second := ft.Start(0, ClassBulk, 1, 0)
	if second != first {
		t.Fatalf("slot not reused: first %d, second %d", first, second)
	}
	run(time.Second)
	s := ft.ClassStats(ClassBulk)
	if s.Sent != 2 || s.Delivered != 2 {
		t.Fatalf("sent/delivered = %d/%d across reuse", s.Sent, s.Delivered)
	}
	// Both incarnations emitted seq 0; the generation bump keeps the
	// second from being mistaken for a duplicate.
	if s.Dups != 0 {
		t.Fatalf("reincarnation miscounted as duplicate (dups=%d)", s.Dups)
	}
}

func TestFlowTableCapacityRefusal(t *testing.T) {
	ft, run := flowNet(t, 2)
	if ft.Start(0, ClassVoIP, 4, 0) < 0 || ft.Start(0, ClassVoIP, 4, 0) < 0 {
		t.Fatal("starts under capacity refused")
	}
	if idx := ft.Start(0, ClassVideo, 4, 0); idx != -1 {
		t.Fatalf("start over capacity returned %d, want -1", idx)
	}
	if s := ft.ClassStats(ClassVideo); s.Refused != 1 {
		t.Fatalf("Refused = %d", s.Refused)
	}
	run(time.Second)
	// Capacity freed by departures is usable again.
	if ft.Start(0, ClassVideo, 1, 0) < 0 {
		t.Fatal("start after departures refused")
	}
}

// flowPacket hand-crafts an inner packet in the table's wire layout.
func flowPacket(idx int32, c Class, gen uint8, seq uint32, sentAt sim.Time) []byte {
	p := make([]byte, 64)
	p[0] = 6 << 4
	binary.BigEndian.PutUint16(p[42:44], FlowPort)
	binary.BigEndian.PutUint32(p[48:52], seq)
	binary.BigEndian.PutUint32(p[52:56], flowWord(idx, c, gen))
	binary.BigEndian.PutUint64(p[56:64], uint64(sentAt))
	return p
}

func TestFlowTableSinkRejectsForeign(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFlowTable(eng, DefaultClasses(), 4)
	ft.Instrument(obs.NewRegistry(), "x")
	sink := ft.SinkFor(eng)
	if sink([]byte{1, 2, 3}) {
		t.Fatal("garbage accepted")
	}
	if sink(make([]byte, 64)) {
		t.Fatal("non-IPv6 accepted")
	}
	app := make([]byte, 64)
	app[0] = 6 << 4
	binary.BigEndian.PutUint16(app[42:44], AppPort)
	if sink(app) {
		t.Fatal("AppGen-port packet accepted")
	}
	if sink(flowPacket(1000, ClassVoIP, 1, 0, 0)) {
		t.Fatal("out-of-range flow index accepted")
	}
	if s := ft.Totals(); s.Delivered != 0 {
		t.Fatalf("spurious deliveries: %+v", s)
	}
}

func TestFlowTableSinkGoldenHoL(t *testing.T) {
	// Golden head-of-line sequence, receiver-side only: packets sent
	// every 10ms; seq 2 is delayed past seqs 3 and 4, so their in-order
	// latency is stalled to seq 2's arrival while raw OWD is not.
	ms := func(n int64) sim.Time { return sim.Time(n) * sim.Time(time.Millisecond) }
	type d struct {
		at     sim.Time
		seq    uint32
		sentAt sim.Time
	}
	sched := []d{
		{ms(28), 0, ms(0)},
		{ms(38), 1, ms(10)},
		{ms(58), 3, ms(30)}, // arrives before seq 2: a gap for now
		{ms(68), 4, ms(40)},
		{ms(98), 2, ms(20)}, // late gap-filler: frontier already moved past it
	}
	eng := sim.NewEngine()
	ft2 := NewFlowTable(eng, DefaultClasses(), 4)
	ft2.Instrument(obs.NewRegistry(), "x")
	sink2 := ft2.SinkFor(eng)
	var inorder []time.Duration
	// Drive deliveries at exact virtual times via scheduled callbacks.
	for _, dv := range sched {
		dv := dv
		eng.Schedule(time.Duration(dv.at), func() {
			before := ft2.InOrderHistogram(ClassVideo).Sum()
			if !sink2(flowPacket(0, ClassVideo, 1, dv.seq, dv.sentAt)) {
				t.Errorf("seq %d rejected", dv.seq)
			}
			after := ft2.InOrderHistogram(ClassVideo).Sum()
			if after != before { // the late gap-filler is counted as a dup, unobserved
				inorder = append(inorder, time.Duration(after-before))
			}
		})
	}
	eng.RunAll()

	// seq 0: 28ms; seq 1: 28ms; seq 3: frontier 58 - sent 30 = 28ms;
	// seq 4: 68-40 = 28ms. seq 2 arrives after the frontier skipped it:
	// dup, no observation.
	want := []time.Duration{28 * time.Millisecond, 28 * time.Millisecond,
		28 * time.Millisecond, 28 * time.Millisecond}
	if len(inorder) != len(want) {
		t.Fatalf("in-order observations %v, want %d", inorder, len(want))
	}
	for i := range want {
		if inorder[i] != want[i] {
			t.Fatalf("in-order[%d] = %v, want %v", i, inorder[i], want[i])
		}
	}
	s := ft2.ClassStats(ClassVideo)
	if s.Delivered != 4 || s.Dups != 1 || s.Gaps != 1 {
		t.Fatalf("delivered/dups/gaps = %d/%d/%d, want 4/1/1", s.Delivered, s.Dups, s.Gaps)
	}
}

func TestFlowTableSinkHoLStallsLatePacket(t *testing.T) {
	// Variant where the delayed packet arrives *before* anything behind
	// it: in-order latency of the followers is stalled to its arrival.
	eng := sim.NewEngine()
	ft := NewFlowTable(eng, DefaultClasses(), 4)
	ft.Instrument(obs.NewRegistry(), "x")
	sink := ft.SinkFor(eng)
	ms := func(n int64) sim.Time { return sim.Time(n) * sim.Time(time.Millisecond) }
	var got []time.Duration
	deliver := func(at sim.Time, seq uint32, sentAt sim.Time) {
		eng.Schedule(time.Duration(at), func() {
			before := ft.InOrderHistogram(ClassVoIP).Sum()
			sink(flowPacket(0, ClassVoIP, 1, seq, sentAt))
			got = append(got, time.Duration(ft.InOrderHistogram(ClassVoIP).Sum()-before))
		})
	}
	deliver(ms(28), 0, ms(0))
	deliver(ms(98), 1, ms(10)) // spike: 88ms OWD
	deliver(ms(99), 2, ms(20)) // on-time 79ms OWD, but frontier is 98... wait
	deliver(ms(100), 3, ms(30))
	eng.RunAll()
	want := []time.Duration{28 * time.Millisecond, 88 * time.Millisecond,
		79 * time.Millisecond, 70 * time.Millisecond}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("in-order[%d] = %v, want %v (all %v)", i, got[i], want[i], got)
		}
	}
}

func TestFlowTableStaleGenerationCountedAsDup(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFlowTable(eng, DefaultClasses(), 4)
	ft.Instrument(obs.NewRegistry(), "x")
	sink := ft.SinkFor(eng)
	if !sink(flowPacket(0, ClassBulk, 2, 0, 0)) { // current incarnation: gen 2
		t.Fatal("gen-2 packet rejected")
	}
	if !sink(flowPacket(0, ClassBulk, 1, 5, 0)) { // straggler from gen 1
		t.Fatal("stale packet must be consumed (it is our traffic), not foreign")
	}
	s := ft.ClassStats(ClassBulk)
	if s.Delivered != 1 || s.Dups != 1 {
		t.Fatalf("delivered/dups = %d/%d, want 1/1", s.Delivered, s.Dups)
	}
	// A *newer* generation adopts (slot reused, first packet arrives).
	if !sink(flowPacket(0, ClassBulk, 3, 0, 0)) {
		t.Fatal("gen-3 packet rejected")
	}
	if s = ft.ClassStats(ClassBulk); s.Delivered != 2 {
		t.Fatalf("delivered = %d after reincarnation", s.Delivered)
	}
}

func TestFlowTableDuplicateDelivery(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFlowTable(eng, DefaultClasses(), 4)
	ft.Instrument(obs.NewRegistry(), "x")
	sink := ft.SinkFor(eng)
	sink(flowPacket(0, ClassVoIP, 1, 0, 0))
	if !sink(flowPacket(0, ClassVoIP, 1, 0, 0)) {
		t.Fatal("duplicate must be consumed, not reported foreign")
	}
	s := ft.ClassStats(ClassVoIP)
	if s.Delivered != 1 || s.Dups != 1 {
		t.Fatalf("delivered/dups = %d/%d, want 1/1", s.Delivered, s.Dups)
	}
	if ft.OWDHistogram(ClassVoIP).Count() != 1 {
		t.Fatal("duplicate observed into the OWD histogram")
	}
}

func TestFlowTableValidation(t *testing.T) {
	eng := sim.NewEngine()
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	small := DefaultClasses()
	small[ClassVoIP].Payload = flowHeaderLen - 1
	expectPanic("payload below flow header", func() { NewFlowTable(eng, small, 4) })
	zero := DefaultClasses()
	zero[ClassBulk].Interval = 0
	expectPanic("zero interval", func() { NewFlowTable(eng, zero, 4) })
	expectPanic("zero capacity", func() { NewFlowTable(eng, DefaultClasses(), 0) })
	ft := NewFlowTable(eng, DefaultClasses(), 4)
	ft.AddEndpoint(nil, netip.MustParseAddr("::1"), netip.MustParseAddr("::2"))
	expectPanic("zero emits", func() { ft.Start(0, ClassVoIP, 0, 0) })
	expectPanic("bad class", func() { ft.Start(0, NumClasses, 1, 0) })
	expectPanic("arrivals without endpoints", func() {
		ft2 := NewFlowTable(eng, DefaultClasses(), 4)
		ft2.StartArrivals(sim.NewStreams(1).Stream("x"), ArrivalConfig{Rate: 1})
	})
}

func TestFlowTableStop(t *testing.T) {
	ft, run := flowNet(t, 8)
	ft.Start(0, ClassVoIP, 1000, 0)
	ft.Start(0, ClassBulk, 1000, 0)
	run(100 * time.Millisecond)
	sentAtStop := ft.Totals().Sent
	ft.Stop()
	if ft.Active() != 0 {
		t.Fatalf("Active = %d after Stop", ft.Active())
	}
	run(time.Second)
	if got := ft.Totals().Sent; got != sentAtStop {
		t.Fatalf("emissions continued after Stop: %d -> %d", sentAtStop, got)
	}
	// The table stays usable: freed slots restart.
	if ft.Start(0, ClassVideo, 2, 0) < 0 {
		t.Fatal("start after Stop refused")
	}
	run(time.Second)
	if s := ft.ClassStats(ClassVideo); s.Sent < 2 {
		t.Fatalf("post-Stop flow sent %d", s.Sent)
	}
}

func arrivalsRun(t *testing.T, seed int64, cfg ArrivalConfig, dur time.Duration) (*FlowTable, *Arrivals) {
	t.Helper()
	w, swA, swB := twoSwitchNet(t)
	ft := NewFlowTable(w.Eng, DefaultClasses(), 1<<14)
	ft.AddEndpoint(swA,
		netip.MustParseAddr("2001:db8:aa::1"), netip.MustParseAddr("2001:db8:bb::1"))
	ft.Instrument(obs.NewRegistry(), "a")
	sink := ft.SinkFor(w.Eng)
	swB.DeliverLocal = func(inner []byte) { sink(inner) }
	a := ft.StartArrivals(sim.NewStreams(seed).Stream("flows/arrivals"), cfg)
	w.Run(sim.Time(dur))
	a.Stop()
	w.Run(sim.Time(dur) + sim.Time(10*time.Second))
	return ft, a
}

func TestArrivalsFluidRateIsDeterministic(t *testing.T) {
	cfg := ArrivalConfig{Rate: 500, Emits: 3}
	ft1, a1 := arrivalsRun(t, 42, cfg, 2*time.Second)
	ft2, a2 := arrivalsRun(t, 42, cfg, 2*time.Second)
	if a1.Started == 0 {
		t.Fatal("no arrivals")
	}
	// The fluid generator starts exactly rate*duration flows.
	if want := uint64(500 * 2); a1.Started+a1.Refused != want {
		t.Fatalf("arrivals = %d, want %d", a1.Started+a1.Refused, want)
	}
	if a1.Started != a2.Started || ft1.Totals() != ft2.Totals() {
		t.Fatalf("same seed diverged: %d/%v vs %d/%v",
			a1.Started, ft1.Totals(), a2.Started, ft2.Totals())
	}
	_, a3 := arrivalsRun(t, 43, cfg, 2*time.Second)
	if a3.Started != a1.Started {
		t.Fatal("fluid arrival count must not depend on the seed")
	}
	tot := ft1.Totals()
	if tot.Delivered != tot.Sent {
		t.Fatalf("lossless link lost packets: %+v", tot)
	}
	// Uniform class mix: every class sees traffic.
	for c := Class(0); c < NumClasses; c++ {
		if ft1.ClassStats(c).Sent == 0 {
			t.Fatalf("class %v starved", c)
		}
	}
}

func TestArrivalsFlashCrowd(t *testing.T) {
	base := ArrivalConfig{Rate: 200, Emits: 2}
	flash := base
	flash.FlashAt = sim.Time(500 * time.Millisecond)
	flash.FlashFor = time.Second
	flash.FlashFactor = 5
	_, a1 := arrivalsRun(t, 7, base, 2*time.Second)
	_, a2 := arrivalsRun(t, 7, flash, 2*time.Second)
	// 2s at 200/s = 400; flash adds 1s at 5x = +800.
	if a1.Started+a1.Refused != 400 {
		t.Fatalf("base arrivals = %d", a1.Started+a1.Refused)
	}
	if got := a2.Started + a2.Refused; got != 400+800 {
		t.Fatalf("flash arrivals = %d, want 1200", got)
	}
}

func TestArrivalsDiurnalCycle(t *testing.T) {
	cfg := ArrivalConfig{
		Rate:          100,
		Emits:         1,
		DiurnalPeriod: 2 * time.Second,
		DiurnalAmp:    0.9,
		ClassMix:      [NumClasses]float64{1, 0, 0}, // all VoIP
	}
	ft, a := arrivalsRun(t, 9, cfg, 2*time.Second)
	// Over one full period the sinusoid integrates to ~zero: total stays
	// near rate*duration, but the first half (peak) must outweigh the
	// trough. Exactness isn't required — the carry keeps it within one.
	total := a.Started + a.Refused
	if total < 198 || total > 202 {
		t.Fatalf("diurnal total = %d, want ~200", total)
	}
	if s := ft.ClassStats(ClassVoIP); s.Sent != a.Started {
		t.Fatalf("class mix [1,0,0] leaked: voip sent %d of %d", s.Sent, a.Started)
	}
	if ft.ClassStats(ClassVideo).Sent != 0 || ft.ClassStats(ClassBulk).Sent != 0 {
		t.Fatal("class mix [1,0,0] leaked to other classes")
	}
}

func TestFlowTableSinkDisambiguatesTables(t *testing.T) {
	// Two tables with overlapping flow-index ranges share one receiving
	// switch (the E13 shape: one table per sending site). The inner
	// source address keyed by the packet's flow index must route each
	// delivery to its own table.
	w, swA, swB := twoSwitchNet(t)
	ftX := NewFlowTable(w.Eng, DefaultClasses(), 8)
	ftX.AddEndpoint(swA,
		netip.MustParseAddr("2001:db8:aa::1"), netip.MustParseAddr("2001:db8:bb::1"))
	ftX.Instrument(obs.NewRegistry(), "x")
	ftY := NewFlowTable(w.Eng, DefaultClasses(), 8)
	ftY.AddEndpoint(swA,
		netip.MustParseAddr("2001:db8:aa::2"), netip.MustParseAddr("2001:db8:bb::1"))
	ftY.Instrument(obs.NewRegistry(), "y")
	sinkX, sinkY := ftX.SinkFor(w.Eng), ftY.SinkFor(w.Eng)
	swB.DeliverLocal = func(inner []byte) {
		if !sinkX(inner) {
			sinkY(inner)
		}
	}
	// Same flow index (0) live in both tables, different packet counts.
	ftX.Start(0, ClassVoIP, 3, 0)
	ftY.Start(0, ClassVoIP, 5, 0)
	w.Run(time.Second)
	sx, sy := ftX.ClassStats(ClassVoIP), ftY.ClassStats(ClassVoIP)
	if sx.Sent != 3 || sx.Delivered != 3 || sx.Dups != 0 {
		t.Fatalf("table X stats %+v, want 3 sent/delivered", sx)
	}
	if sy.Sent != 5 || sy.Delivered != 5 || sy.Dups != 0 {
		t.Fatalf("table Y stats %+v, want 5 sent/delivered", sy)
	}
}

func TestHistogramQuantileFlowScale(t *testing.T) {
	// The SLO check path: p99 of a distribution with a known tail.
	var h obs.Histogram
	for i := 0; i < 990; i++ {
		h.Observe(int64(5 * time.Millisecond))
	}
	for i := 0; i < 10; i++ {
		h.Observe(int64(300 * time.Millisecond))
	}
	// 5ms lands in the 2^23ns (~8.4ms) log2 bucket: the bound is within
	// 2x of the true quantile.
	if q := h.Quantile(0.5); q > int64(10*time.Millisecond) {
		t.Fatalf("p50 bound = %v", time.Duration(q))
	}
	if q := h.Quantile(0.99); q > int64(10*time.Millisecond) {
		t.Fatalf("p99 bound = %v (tail is exactly 1%%)", time.Duration(q))
	}
	if q := h.Quantile(1); q < int64(300*time.Millisecond) {
		t.Fatalf("p100 bound = %v misses the tail", time.Duration(q))
	}
}
