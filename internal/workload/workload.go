// Package workload generates the traffic the experiments measure: the
// paper's 10 ms per-path probes, constant-bit-rate application streams
// with ground-truth latency accounting, and an in-order (TCP-like)
// delivery model that turns a packet-delay trace into application-level
// latency (§5's head-of-line-blocking argument).
package workload

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"slices"
	"time"

	"tango/internal/dataplane"
	"tango/internal/packet"
	"tango/internal/sim"
)

// Prober sends a small packet down every tunnel of a switch at a fixed
// interval — the paper "ran a ping along each path every 10 ms". Probes
// ride the tunnels like any data packet, so the receiver measures them
// with zero extra machinery (no ICMP, no protocol dependence).
type Prober struct {
	sw       *dataplane.Switch
	tick     *sim.Ticker
	inner    []byte
	Interval time.Duration
	Sent     uint64
}

// NewProber starts probing every interval. src/dst address the inner
// probe packet (conventionally host addresses of the two sites).
func NewProber(eng *sim.Engine, sw *dataplane.Switch, src, dst netip.Addr, interval time.Duration) *Prober {
	p := &Prober{sw: sw, Interval: interval}
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload([]byte("tango-probe"))
	udp := &packet.UDP{SrcPort: 7, DstPort: 7}
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64, Src: src, Dst: dst}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		panic(err)
	}
	p.inner = make([]byte, buf.Len())
	copy(p.inner, buf.Bytes())
	p.tick = sim.NewTicker(eng, interval, func(sim.Time) { p.probe() })
	return p
}

func (p *Prober) probe() {
	for _, tun := range p.sw.Tunnels() {
		p.sw.SendOnTunnel(tun, p.inner)
		p.Sent++
	}
}

// Stop halts probing.
func (p *Prober) Stop() { p.tick.Stop() }

// AppRecord is the ground-truth fate of one application packet.
type AppRecord struct {
	Seq     uint32
	SentAt  sim.Time
	RecvAt  sim.Time // 0 if lost
	Latency time.Duration
}

// AppGen emits a constant-rate application stream through the switch's
// normal sender path (so the controller's current choice carries it) and
// records ground-truth one-way latency in virtual time — the "user
// experience" the baselines and Tango are compared on.
type AppGen struct {
	eng  *sim.Engine
	sw   *dataplane.Switch
	tick *sim.Ticker

	seq       uint32
	sentAt    map[uint32]sim.Time
	delivered map[uint32]bool
	Records   []AppRecord
	Pending   int
	// Dups counts duplicate deliveries of already-matched packets
	// (legacy sink mode).
	Dups     uint64
	template []byte

	// recvEng, when set by BindSink, switches the sink to receiver-side
	// staging (see BindSink); arrivals collects (seq, receive time) pairs
	// touched only by the receiving partition's goroutine.
	recvEng  *sim.Engine
	arrivals []arrival

	// OnDeliver, when set, fires for each delivered packet (legacy sink
	// mode only; BindSink mode joins records in FinalRecords instead).
	OnDeliver func(AppRecord)
}

type arrival struct {
	seq uint32
	at  sim.Time
}

// AppPort is the inner UDP destination port that identifies AppGen
// traffic at the receiving site.
const AppPort = 7001

// NewAppGen starts a stream of payloadSize-byte packets every interval.
// Call Sink on the receiving site's delivery hook to complete the loop.
// payloadSize must be at least 4 bytes — the sequence number is stamped
// into the first 4 payload bytes — and NewAppGen panics otherwise.
func NewAppGen(eng *sim.Engine, sw *dataplane.Switch, src, dst netip.Addr, interval time.Duration, payloadSize int) *AppGen {
	if payloadSize < 4 {
		panic(fmt.Sprintf("workload: NewAppGen payload %dB cannot carry the 4-byte sequence number", payloadSize))
	}
	g := &AppGen{eng: eng, sw: sw, sentAt: make(map[uint32]sim.Time), delivered: make(map[uint32]bool)}
	buf := packet.NewSerializeBuffer()
	pay := packet.Payload(make([]byte, payloadSize))
	udp := &packet.UDP{SrcPort: 7000, DstPort: AppPort}
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64, Src: src, Dst: dst}
	if err := packet.SerializeLayers(buf, ip, udp, &pay); err != nil {
		panic(err)
	}
	g.template = make([]byte, buf.Len())
	copy(g.template, buf.Bytes())
	g.tick = sim.NewTicker(eng, interval, func(now sim.Time) { g.emit(now) })
	return g
}

func (g *AppGen) emit(now sim.Time) {
	// SendToPeer borrows the slice (the switch serializes it into a
	// pooled buffer before returning), so the template is reused across
	// packets: stamp the sequence number into the first 4 payload bytes
	// (offset: IPv6 40 + UDP 8) in place.
	binary.BigEndian.PutUint32(g.template[48:52], g.seq)
	g.sentAt[g.seq] = now
	g.seq++
	g.Pending++
	g.sw.SendToPeer(g.template)
}

// BindSink binds the sink side to the receiving site's engine and
// switches delivery accounting to receiver-side staging: Sink then
// timestamps arrivals with the receiver's clock and touches only
// receiver-owned state, and send/receive records are joined in
// FinalRecords. Required on a sharded network whenever the receiving
// switch lives on a different partition than the generator (the legacy
// sink would read sender-side maps from the receiver's goroutine).
// OnDeliver does not fire in this mode.
func (g *AppGen) BindSink(eng *sim.Engine) { g.recvEng = eng }

// Sink consumes an inner packet delivered at the receiving site and, if
// it belongs to this generator, records its latency. Wire it into the
// remote switch's DeliverLocal.
func (g *AppGen) Sink(inner []byte) bool {
	if len(inner) < 52 || inner[0]>>4 != 6 {
		return false
	}
	dport := binary.BigEndian.Uint16(inner[42:44])
	if dport != AppPort {
		return false
	}
	seq := binary.BigEndian.Uint32(inner[48:52])
	if g.recvEng != nil {
		g.arrivals = append(g.arrivals, arrival{seq: seq, at: g.recvEng.Now()})
		return true
	}
	sent, ok := g.sentAt[seq]
	if !ok {
		if g.delivered[seq] {
			// A duplicate of a packet that already matched is still this
			// generator's traffic: consume it (counted, not re-recorded)
			// rather than reporting it foreign.
			g.Dups++
			return true
		}
		return false
	}
	delete(g.sentAt, seq)
	g.delivered[seq] = true
	g.Pending--
	now := g.eng.Now()
	rec := AppRecord{Seq: seq, SentAt: sent, RecvAt: now, Latency: now - sent}
	g.Records = append(g.Records, rec)
	if g.OnDeliver != nil {
		g.OnDeliver(rec)
	}
	return true
}

// Stop halts the stream.
func (g *AppGen) Stop() { g.tick.Stop() }

// FinalRecords returns every emitted packet ordered by send time, with
// in-flight/lost packets carrying RecvAt 0. Call after the simulation
// has drained (single-threaded: between runs). In BindSink mode this is
// where receiver-staged arrivals are joined with the send log.
func (g *AppGen) FinalRecords() []AppRecord {
	if g.recvEng != nil {
		out := make([]AppRecord, 0, len(g.sentAt))
		matched := make(map[uint32]bool, len(g.arrivals))
		for _, a := range g.arrivals {
			sent, ok := g.sentAt[a.seq]
			if !ok || matched[a.seq] {
				continue
			}
			matched[a.seq] = true
			out = append(out, AppRecord{Seq: a.seq, SentAt: sent, RecvAt: a.at, Latency: a.at - sent})
		}
		for seq, sent := range g.sentAt {
			if !matched[seq] {
				out = append(out, AppRecord{Seq: seq, SentAt: sent})
			}
		}
		sortRecords(out)
		return out
	}
	out := append([]AppRecord(nil), g.Records...)
	for seq, sent := range g.sentAt {
		out = append(out, AppRecord{Seq: seq, SentAt: sent})
	}
	sortRecords(out)
	return out
}

func cmpRecords(a, b AppRecord) int {
	switch {
	case a.SentAt != b.SentAt:
		if a.SentAt < b.SentAt {
			return -1
		}
		return 1
	case a.Seq != b.Seq:
		if a.Seq < b.Seq {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// sortRecordsInversionBound caps how disordered a trace may be before
// sortRecords abandons insertion sort: heavily reordered BindSink traces
// (map-iteration tails, large reorder windows) would otherwise make it
// O(n²).
const sortRecordsInversionBound = 16

func sortRecords(rs []AppRecord) {
	// Traces are usually nearly sorted (records joined in send order with
	// a short out-of-order tail), where insertion sort beats a general
	// sort. Count adjacent inversions first and fall back to
	// slices.SortFunc when the trace is genuinely disordered.
	inv := 0
	for i := 1; i < len(rs); i++ {
		if cmpRecords(rs[i], rs[i-1]) < 0 {
			if inv++; inv > sortRecordsInversionBound {
				slices.SortFunc(rs, cmpRecords)
				return
			}
		}
	}
	if inv == 0 {
		return
	}
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && cmpRecords(rs[j], rs[j-1]) < 0; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// Sent returns the number of packets emitted.
func (g *AppGen) Sent() uint32 { return g.seq }

// InOrderModel converts a per-packet delay trace into in-order delivery
// latency, the quantity a TCP-like bytestream application experiences:
// packet n is usable only once packets 0..n-1 are usable, so one delayed
// packet holds up everything behind it (§5: "the application-layer data
// stream will be held up by the slow packet").
type InOrderModel struct {
	// RetransmitAfter simulates loss recovery: a lost packet is treated
	// as arriving RetransmitAfter later than its original send (0
	// disables loss handling; lost packets then stall forever and are
	// skipped).
	RetransmitAfter time.Duration
}

// Apply takes records ordered by send time (RecvAt 0 = lost) and returns
// the in-order delivery latency for each delivered packet.
func (m InOrderModel) Apply(recs []AppRecord) []time.Duration {
	out := make([]time.Duration, 0, len(recs))
	var readyAt sim.Time
	for _, r := range recs {
		arrive := r.RecvAt
		if arrive == 0 {
			if m.RetransmitAfter == 0 {
				continue
			}
			arrive = r.SentAt + m.RetransmitAfter
		}
		if arrive > readyAt {
			readyAt = arrive
		}
		out = append(out, readyAt-r.SentAt)
	}
	return out
}
