package workload

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"tango/internal/addr"
	"tango/internal/dataplane"
	"tango/internal/sim"
	"tango/internal/simnet"
)

// twoSwitchNet wires two switches over one 10ms link with one tunnel.
func twoSwitchNet(t *testing.T) (*simnet.Network, *dataplane.Switch, *dataplane.Switch) {
	t.Helper()
	w := simnet.New(4)
	a := w.AddNode("a", 0)
	b := w.AddNode("b", 0)
	cfg := simnet.LinkConfig{Delay: simnet.FixedDelay(5 * time.Millisecond)}
	w.Connect(a, b, cfg, cfg)
	a.SetRoute(addr.MustParsePrefix("2001:db8:b::/48"), a.Ports()[0])
	b.SetRoute(addr.MustParsePrefix("2001:db8:a::/48"), b.Ports()[0])
	swA := dataplane.NewSwitch(a)
	swB := dataplane.NewSwitch(b)
	swA.AddTunnel(&dataplane.Tunnel{PathID: 1, Name: "p1",
		LocalAddr:  netip.MustParseAddr("2001:db8:a::1"),
		RemoteAddr: netip.MustParseAddr("2001:db8:b::1"), SrcPort: 40001})
	swB.AddTunnel(&dataplane.Tunnel{PathID: 1, Name: "p1",
		LocalAddr:  netip.MustParseAddr("2001:db8:b::1"),
		RemoteAddr: netip.MustParseAddr("2001:db8:a::1"), SrcPort: 40001})
	swA.AddPeerPrefix(addr.MustParsePrefix("2001:db8:bb::/48"))
	return w, swA, swB
}

func TestProberCoversAllTunnels(t *testing.T) {
	w, swA, swB := twoSwitchNet(t)
	swA.AddTunnel(&dataplane.Tunnel{PathID: 2, Name: "p2",
		LocalAddr:  netip.MustParseAddr("2001:db8:a::2"),
		RemoteAddr: netip.MustParseAddr("2001:db8:b::1"), SrcPort: 40002})
	counts := map[uint8]int{}
	swB.OnMeasure = func(m dataplane.Measurement) { counts[m.PathID]++ }

	p := NewProber(w.Eng, swA,
		netip.MustParseAddr("2001:db8:aa::1"), netip.MustParseAddr("2001:db8:bb::1"),
		10*time.Millisecond)
	w.Run(time.Second + time.Millisecond) // ticks at 10ms..1000ms
	p.Stop()
	w.Run(2 * time.Second) // drain in-flight probes
	if counts[1] != 100 || counts[2] != 100 {
		t.Fatalf("per-path probes = %v, want 100 each", counts)
	}
	if p.Sent != 200 {
		t.Fatalf("Sent = %d", p.Sent)
	}
}

func TestAppGenLatencyGroundTruth(t *testing.T) {
	w, swA, swB := twoSwitchNet(t)
	g := NewAppGen(w.Eng, swA,
		netip.MustParseAddr("2001:db8:aa::1"), netip.MustParseAddr("2001:db8:bb::1"),
		20*time.Millisecond, 100)
	swB.DeliverLocal = func(inner []byte) { g.Sink(inner) }

	w.Run(time.Second)
	if g.Sent() < 45 {
		t.Fatalf("sent = %d", g.Sent())
	}
	if len(g.Records) == 0 {
		t.Fatal("no deliveries")
	}
	for _, r := range g.Records {
		if r.Latency != 5*time.Millisecond {
			t.Fatalf("latency = %v, want 5ms (ground truth, no clock offset)", r.Latency)
		}
	}
	if g.Pending > 1 {
		t.Fatalf("pending = %d", g.Pending)
	}
	g.Stop()
}

func TestAppGenFinalRecordsIncludeLost(t *testing.T) {
	w, swA, swB := twoSwitchNet(t)
	// 50% loss on the a->b link.
	w.Links()[0].LineAB().SetLoss(0.5)
	g := NewAppGen(w.Eng, swA,
		netip.MustParseAddr("2001:db8:aa::1"), netip.MustParseAddr("2001:db8:bb::1"),
		5*time.Millisecond, 50)
	swB.DeliverLocal = func(inner []byte) { g.Sink(inner) }
	w.Run(2 * time.Second)
	g.Stop()
	w.Run(3 * time.Second)

	recs := g.FinalRecords()
	if uint32(len(recs)) != g.Sent() {
		t.Fatalf("FinalRecords %d != sent %d", len(recs), g.Sent())
	}
	lost := 0
	for i, r := range recs {
		if r.RecvAt == 0 {
			lost++
		}
		if i > 0 && recs[i].SentAt < recs[i-1].SentAt {
			t.Fatal("records unsorted")
		}
	}
	if lost == 0 || lost == len(recs) {
		t.Fatalf("lost = %d of %d; loss process degenerate", lost, len(recs))
	}
}

func TestAppGenSinkRejectsForeign(t *testing.T) {
	w, swA, _ := twoSwitchNet(t)
	g := NewAppGen(w.Eng, swA,
		netip.MustParseAddr("2001:db8:aa::1"), netip.MustParseAddr("2001:db8:bb::1"),
		time.Second, 10)
	if g.Sink([]byte{1, 2, 3}) {
		t.Fatal("garbage accepted")
	}
	if g.Sink(make([]byte, 100)) {
		t.Fatal("non-IPv6 accepted")
	}
	// Unknown seq.
	fake := make([]byte, 60)
	fake[0] = 6 << 4
	fake[42], fake[43] = AppPort>>8, AppPort&0xff
	if g.Sink(fake) {
		t.Fatal("unknown sequence accepted")
	}
}

func TestInOrderModelHeadOfLineBlocking(t *testing.T) {
	// Packets sent every 10ms, normally arriving 28ms later; packet 2
	// hits a 50ms spike. In-order delivery stalls packets 3 and 4 even
	// though they arrived on time.
	mk := func(seq uint32, sentMs, latMs int64) AppRecord {
		sent := sim.Time(sentMs) * sim.Time(time.Millisecond)
		return AppRecord{Seq: seq, SentAt: sent, RecvAt: sent + sim.Time(latMs)*sim.Time(time.Millisecond)}
	}
	recs := []AppRecord{
		mk(0, 0, 28),
		mk(1, 10, 28),
		mk(2, 20, 78), // spike: arrives t=98
		mk(3, 30, 28), // arrives t=58, usable at t=98
		mk(4, 40, 28), // arrives t=68, usable at t=98
		mk(5, 50, 28), // arrives t=78, usable at t=98
		mk(6, 60, 28), // arrives t=88, usable at t=98
		mk(7, 70, 28), // arrives t=98, unaffected
	}
	lats := InOrderModel{}.Apply(recs)
	wantMs := []int64{28, 28, 78, 68, 58, 48, 38, 28}
	for i, w := range wantMs {
		if lats[i] != time.Duration(w)*time.Millisecond {
			t.Fatalf("in-order latency[%d] = %v, want %dms (all: %v)", i, lats[i], w, lats)
		}
	}
}

func TestInOrderModelLoss(t *testing.T) {
	mk := func(seq uint32, sentMs int64, lost bool) AppRecord {
		sent := sim.Time(sentMs) * sim.Time(time.Millisecond)
		r := AppRecord{Seq: seq, SentAt: sent}
		if !lost {
			r.RecvAt = sent + sim.Time(28*time.Millisecond)
		}
		return r
	}
	recs := []AppRecord{mk(0, 0, false), mk(1, 10, true), mk(2, 20, false)}
	// Without retransmission, lost packets are skipped.
	lats := InOrderModel{}.Apply(recs)
	if len(lats) != 2 {
		t.Fatalf("lats = %v", lats)
	}
	// With a 200ms retransmit, packet 1 "arrives" at 210 and stalls 2.
	lats = InOrderModel{RetransmitAfter: 200 * time.Millisecond}.Apply(recs)
	if len(lats) != 3 {
		t.Fatalf("lats = %v", lats)
	}
	if lats[1] != 200*time.Millisecond {
		t.Fatalf("retransmitted latency = %v", lats[1])
	}
	if lats[2] != 190*time.Millisecond {
		t.Fatalf("stalled latency = %v", lats[2])
	}
}

// Property: in-order latencies are always >= raw latencies, and
// nonincreasing spikes propagate monotonically (delivery times never go
// backwards).
func TestInOrderMonotoneProperty(t *testing.T) {
	f := func(latsRaw []uint16) bool {
		recs := make([]AppRecord, len(latsRaw))
		for i, l := range latsRaw {
			sent := sim.Time(i) * sim.Time(10*time.Millisecond)
			recs[i] = AppRecord{Seq: uint32(i), SentAt: sent,
				RecvAt: sent + sim.Time(l%100)*sim.Time(time.Millisecond) + sim.Time(time.Millisecond)}
		}
		lats := InOrderModel{}.Apply(recs)
		var lastDeliver sim.Time
		for i, l := range lats {
			raw := recs[i].RecvAt - recs[i].SentAt
			if l < raw {
				return false
			}
			deliver := recs[i].SentAt + l
			if deliver < lastDeliver {
				return false
			}
			lastDeliver = deliver
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewAppGenRejectsTinyPayload(t *testing.T) {
	w, swA, _ := twoSwitchNet(t)
	defer func() {
		if recover() == nil {
			t.Fatal("payloadSize 3 did not panic (seq needs 4 bytes)")
		}
	}()
	NewAppGen(w.Eng, swA,
		netip.MustParseAddr("2001:db8:aa::1"), netip.MustParseAddr("2001:db8:bb::1"),
		time.Second, 3)
}

func TestAppGenSinkConsumesDuplicate(t *testing.T) {
	w, swA, swB := twoSwitchNet(t)
	g := NewAppGen(w.Eng, swA,
		netip.MustParseAddr("2001:db8:aa::1"), netip.MustParseAddr("2001:db8:bb::1"),
		20*time.Millisecond, 100)
	var lastInner []byte
	swB.DeliverLocal = func(inner []byte) {
		lastInner = append(lastInner[:0], inner...) // DeliverLocal borrows; keep a copy
		g.Sink(inner)
	}
	w.Run(100 * time.Millisecond)
	g.Stop()
	if lastInner == nil {
		t.Fatal("no deliveries")
	}
	recorded := len(g.Records)
	// Replaying an already-matched packet: it IS this generator's
	// traffic, so the sink must consume it (claiming it from the sink
	// chain), count it, and not re-record it.
	if !g.Sink(lastInner) {
		t.Fatal("duplicate of a matched packet reported as foreign")
	}
	if g.Dups != 1 {
		t.Fatalf("Dups = %d, want 1", g.Dups)
	}
	if len(g.Records) != recorded {
		t.Fatal("duplicate re-recorded")
	}
	// A genuinely unknown seq is still foreign.
	fake := append([]byte(nil), lastInner...)
	fake[48], fake[49], fake[50], fake[51] = 0xff, 0xff, 0xff, 0xff
	if g.Sink(fake) {
		t.Fatal("never-sent sequence accepted")
	}
}

func TestInOrderModelAllLost(t *testing.T) {
	mkLost := func(seq uint32, sentMs int64) AppRecord {
		return AppRecord{Seq: seq, SentAt: sim.Time(sentMs) * sim.Time(time.Millisecond)}
	}
	recs := []AppRecord{mkLost(0, 0), mkLost(1, 10), mkLost(2, 20)}
	// No retransmission: every packet stalls forever and is skipped.
	if lats := (InOrderModel{}).Apply(recs); len(lats) != 0 {
		t.Fatalf("all-lost trace produced %v", lats)
	}
	// With retransmission every packet "arrives" SentAt+RetransmitAfter:
	// arrivals are monotone, so each costs exactly the retransmit delay.
	lats := InOrderModel{RetransmitAfter: 150 * time.Millisecond}.Apply(recs)
	if len(lats) != 3 {
		t.Fatalf("lats = %v", lats)
	}
	for i, l := range lats {
		if l != 150*time.Millisecond {
			t.Fatalf("lats[%d] = %v, want 150ms", i, l)
		}
	}
}

func TestInOrderModelRetransmitShorterThanReorderWindow(t *testing.T) {
	// Packet 1 is lost with a 30ms retransmit, but packet 0 is reordered
	// so badly (80ms late) that the retransmit "arrives" before the
	// frontier clears: the head of line, not the retransmit, dominates.
	mk := func(seq uint32, sentMs, recvMs int64) AppRecord {
		return AppRecord{Seq: seq,
			SentAt: sim.Time(sentMs) * sim.Time(time.Millisecond),
			RecvAt: sim.Time(recvMs) * sim.Time(time.Millisecond)}
	}
	recs := []AppRecord{
		mk(0, 0, 80),  // 80ms OWD: the reorder window
		mk(1, 10, 0),  // lost; retransmit arrives 10+30 = 40ms
		mk(2, 20, 25), // on time
	}
	lats := InOrderModel{RetransmitAfter: 30 * time.Millisecond}.Apply(recs)
	want := []time.Duration{80 * time.Millisecond, 70 * time.Millisecond, 60 * time.Millisecond}
	if len(lats) != len(want) {
		t.Fatalf("lats = %v", lats)
	}
	for i := range want {
		if lats[i] != want[i] {
			t.Fatalf("lats[%d] = %v, want %v (frontier must dominate the short retransmit)",
				i, lats[i], want[i])
		}
	}
}

func TestInOrderModelGoldenSpikeRecovery(t *testing.T) {
	// Golden HoL-blocking sequence with loss in the middle of a spike:
	// exact expected latencies, computed by hand.
	mk := func(seq uint32, sentMs, recvMs int64) AppRecord {
		r := AppRecord{Seq: seq, SentAt: sim.Time(sentMs) * sim.Time(time.Millisecond)}
		if recvMs > 0 {
			r.RecvAt = sim.Time(recvMs) * sim.Time(time.Millisecond)
		}
		return r
	}
	recs := []AppRecord{
		mk(0, 0, 30),   // 30ms
		mk(1, 10, 0),   // lost; retransmit at 10+100 = 110
		mk(2, 20, 50),  // arrives 50, usable 110
		mk(3, 30, 140), // its own spike beyond the frontier
		mk(4, 40, 70),  // arrives 70, usable 140
	}
	lats := InOrderModel{RetransmitAfter: 100 * time.Millisecond}.Apply(recs)
	want := []time.Duration{
		30 * time.Millisecond,  // 0
		100 * time.Millisecond, // 1: retransmit
		90 * time.Millisecond,  // 2: 110-20
		110 * time.Millisecond, // 3: 140-30
		100 * time.Millisecond, // 4: 140-40
	}
	for i := range want {
		if lats[i] != want[i] {
			t.Fatalf("lats[%d] = %v, want %v (all %v)", i, lats[i], want[i], lats)
		}
	}
}

func TestSortRecordsShuffled(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 17, 1000} {
		rs := make([]AppRecord, n)
		for i := range rs {
			rs[i] = AppRecord{Seq: uint32(i), SentAt: sim.Time(i) * sim.Time(time.Millisecond)}
		}
		rng.Shuffle(len(rs), func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
		sortRecords(rs)
		for i := range rs {
			if rs[i].Seq != uint32(i) {
				t.Fatalf("n=%d: rs[%d].Seq = %d after sort", n, i, rs[i].Seq)
			}
		}
	}
	// Nearly sorted (the insertion path): a short out-of-order tail.
	rs := make([]AppRecord, 100)
	for i := range rs {
		rs[i] = AppRecord{Seq: uint32(i), SentAt: sim.Time(i) * sim.Time(time.Millisecond)}
	}
	rs[97], rs[99] = rs[99], rs[97]
	sortRecords(rs)
	for i := range rs {
		if rs[i].Seq != uint32(i) {
			t.Fatalf("nearly-sorted: rs[%d].Seq = %d", i, rs[i].Seq)
		}
	}
	// Ties on SentAt break by Seq.
	ties := []AppRecord{{Seq: 2}, {Seq: 0}, {Seq: 1}}
	sortRecords(ties)
	for i := range ties {
		if ties[i].Seq != uint32(i) {
			t.Fatalf("tie-break: %v", ties)
		}
	}
}

func benchRecords(n int, shuffled bool) []AppRecord {
	rs := make([]AppRecord, n)
	for i := range rs {
		rs[i] = AppRecord{Seq: uint32(i), SentAt: sim.Time(i) * sim.Time(time.Millisecond)}
	}
	if shuffled {
		rand.New(rand.NewSource(1)).Shuffle(n, func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
	} else {
		// A BindSink-like short reorder tail.
		rs[n-1], rs[n-3] = rs[n-3], rs[n-1]
	}
	return rs
}

// BenchmarkSortRecordsShuffled is the satellite's proof: a fully
// shuffled 10k-record trace must sort in O(n log n), not the old
// insertion sort's O(n²).
func BenchmarkSortRecordsShuffled(b *testing.B) {
	src := benchRecords(10_000, true)
	buf := make([]AppRecord, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		sortRecords(buf)
	}
}

func BenchmarkSortRecordsNearlySorted(b *testing.B) {
	src := benchRecords(10_000, false)
	buf := make([]AppRecord, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		sortRecords(buf)
	}
}
