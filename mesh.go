package tango

import (
	"fmt"
	"time"

	"tango/internal/bgp"
	"tango/internal/control"
	"tango/internal/core"
	"tango/internal/dataplane"
	"tango/internal/events"
	"tango/internal/obs"
	"tango/internal/topo"
)

// MeshProvider describes one transit provider of a custom mesh topology.
// Backbone delay follows the radial model: the provider's path between
// two sites costs the sum of the sites' radii scaled by the provider's
// factor, plus per-packet Gaussian noise.
type MeshProvider struct {
	Name string
	ASN  uint32
	// Scale multiplies each site's radius on this provider's backbone
	// (1.0 = the topology's fastest tier; slower carriers use >1).
	Scale float64
	// JitterStd is the per-packet delay noise.
	JitterStd time.Duration
}

// MeshSiteSpec places one site in a custom mesh topology.
type MeshSiteSpec struct {
	Name string
	// Radius is the site's distance from the (notional) network center;
	// it sets the scale of every provider path touching the site.
	Radius time.Duration
	// ClockOffset skews the site's server clocks (unsynchronised sites
	// are the realistic default; zero means perfectly synced).
	ClockOffset time.Duration
	// Providers lists the transit providers the site's POP attaches to.
	Providers []string
}

// MeshOptions configures NewMesh. Leaving Providers/Sites/Pairs empty
// deploys the default three-site topology (NY, CHI, LA over NTT, Telia,
// GTT) in which NY and LA share only one provider — the situation where
// relaying through CHI pays off.
type MeshOptions struct {
	// Seed drives every random process; equal seeds reproduce bit-for-bit.
	Seed int64
	// ProbeInterval is the per-path measurement cadence (default 10 ms).
	ProbeInterval time.Duration
	// DecideEvery is the per-pair controller cadence (default 1 s).
	DecideEvery time.Duration
	// SitePolicy selects every member controller's strategy.
	SitePolicy Policy
	// RecordBucket, when positive, records per-path OWD series.
	RecordBucket time.Duration
	// AuthKey enables authenticated telemetry on every border switch.
	AuthKey []byte
	// MaxRelays bounds intermediate sites per overlay route (0 = the
	// default of one relay; -1 restricts to direct routes).
	MaxRelays int

	// Providers/Sites/Pairs define a custom topology. Pairs lists the
	// site pairs that deploy Tango; sites without a pair between them can
	// still be connected through relays.
	Providers []MeshProvider
	Sites     []MeshSiteSpec
	Pairs     [][2]string
}

// Mesh is an N-site Tango deployment: pairwise Tango between the
// configured site pairs, composed into an overlay that can relay traffic
// through intermediate sites when every direct wide-area path degrades.
type Mesh struct {
	scenario *topo.MeshScenario
	mesh     *core.Mesh
	opts     MeshOptions
	nameFor  func(bgp.ASN) string
	chaos    *Chaos
	buildErr error

	// trunkCap records SetTrunkCapacity declarations for the steering
	// optimizer; steer holds the per-pair class selectors it installed.
	trunkCap map[[2]string]float64
	steer    map[[2]string]*dataplane.ClassSelector
}

// NewMesh builds the simulated N-site deployment (BGP converged, host
// prefixes announced) without running Tango establishment yet.
func NewMesh(opts MeshOptions) *Mesh {
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = 10 * time.Millisecond
	}
	if opts.DecideEvery == 0 {
		opts.DecideEvery = time.Second
	}
	var cfg topo.MeshConfig
	var nameFor func(bgp.ASN) string
	if len(opts.Sites) == 0 {
		cfg = topo.TriConfig(opts.Seed)
		nameFor = topo.TriProviderName
	} else {
		provs := make([]topo.RadialProvider, 0, len(opts.Providers))
		names := make(map[bgp.ASN]string, len(opts.Providers))
		for _, p := range opts.Providers {
			provs = append(provs, topo.RadialProvider{
				Name:  p.Name,
				ASN:   bgp.ASN(p.ASN),
				Scale: p.Scale,
				Std:   p.JitterStd,
			})
			names[bgp.ASN(p.ASN)] = p.Name
		}
		nameFor = func(a bgp.ASN) string {
			if n, ok := names[a]; ok {
				return n
			}
			return fmt.Sprintf("AS%d", a)
		}
		sites := make([]topo.RadialSite, 0, len(opts.Sites))
		for _, s := range opts.Sites {
			sites = append(sites, topo.RadialSite{
				Name:        s.Name,
				Radius:      s.Radius,
				ClockOffset: s.ClockOffset,
				Providers:   s.Providers,
			})
		}
		cfg = topo.RadialMeshConfig(opts.Seed, provs, sites, opts.Pairs)
	}
	s, err := topo.NewMeshScenario(cfg)
	if err != nil {
		return &Mesh{opts: opts, buildErr: err}
	}
	s.Run(5 * time.Minute)
	return &Mesh{scenario: s, opts: opts, nameFor: nameFor}
}

// Establish runs the paper's setup for every deployed pair concurrently
// in virtual time — discovery, pinned prefixes, tunnels, probing — then
// wires the overlay relay tables. It returns an error if the topology
// was invalid or establishment does not complete.
func (m *Mesh) Establish() error {
	if m.buildErr != nil {
		return m.buildErr
	}
	if m.mesh != nil {
		return nil // already established; re-wiring would duplicate the deployment
	}
	pol := m.opts.SitePolicy
	cm, err := core.MeshFromScenario(m.scenario, core.MeshConfig{
		ProbeInterval: m.opts.ProbeInterval,
		DecideEvery:   m.opts.DecideEvery,
		NewPolicy:     func(site, peer string) control.Policy { return mkPolicy(pol) },
		NameFor:       m.nameFor,
		RecordBucket:  m.opts.RecordBucket,
		AuthKey:       m.opts.AuthKey,
		MaxRelays:     m.opts.MaxRelays,
	})
	if err != nil {
		return err
	}
	cm.Establish()
	if !cm.RunUntilReady(4 * time.Hour) {
		return fmt.Errorf("tango: mesh establishment did not complete")
	}
	m.mesh = cm
	return nil
}

// Instrument registers every member edge server's metrics in reg
// (labelled "site->peer") and journals path switches to j. Call after
// Establish.
func (m *Mesh) Instrument(reg *obs.Registry, j *obs.Journal) error {
	if m.mesh == nil {
		return fmt.Errorf("tango: Instrument before Establish")
	}
	m.mesh.Instrument(reg, j)
	return nil
}

// Run advances the deployment by d of virtual time.
func (m *Mesh) Run(d time.Duration) { m.scenario.Run(d) }

// Now returns the current virtual time.
func (m *Mesh) Now() time.Duration { return m.scenario.B.W.Now() }

// Sites returns the deployment's site names, sorted.
func (m *Mesh) Sites() []string { return m.mesh.Sites() }

// Route is one end-to-end overlay route: direct (empty Via) or relayed
// through the named sites in order. OWDMs/JitterMs sum the live smoothed
// per-segment estimates; the per-segment clock offsets telescope, so
// routes of the same site pair compare exactly even though absolute
// values carry a constant offset.
type Route struct {
	Src, Dst string
	Via      []string
	// OWDMs and JitterMs are the summed segment estimates (receiver
	// clock domains; compare within a site pair, not across pairs).
	OWDMs, JitterMs float64
	// Valid reports whether every segment currently has a live estimate.
	Valid bool
}

// Relayed reports whether the route hands traffic through relay sites.
func (r Route) Relayed() bool { return len(r.Via) > 0 }

// String renders the route's site sequence.
func (r Route) String() string {
	s := r.Src
	for _, v := range r.Via {
		s += "->" + v
	}
	return s + "->" + r.Dst
}

func publicRoute(r control.CompositeRoute) Route {
	return Route{Src: r.Src, Dst: r.Dst, Via: r.Via, OWDMs: r.OWDMs, JitterMs: r.JitterMs, Valid: r.Valid}
}

// Routes returns every route from src to dst scored from the live
// segment estimates, best-first. Establish must have succeeded.
func (m *Mesh) Routes(src, dst string) []Route {
	rs := m.mesh.Routes(src, dst)
	out := make([]Route, 0, len(rs))
	for _, r := range rs {
		out = append(out, publicRoute(r))
	}
	return out
}

// BestRoute returns the currently best valid route from src to dst.
func (m *Mesh) BestRoute(src, dst string) (Route, bool) {
	r, ok := m.mesh.Best(src, dst)
	return publicRoute(r), ok
}

// Send transmits an application payload along a specific route as a UDP
// packet between the route's endpoint host addresses. Direct routes are
// tunnelled by the origin pair; relayed routes are re-encapsulated at
// each intermediate site.
func (m *Mesh) Send(r Route, srcPort, dstPort uint16, payload []byte) error {
	return m.mesh.SendAlong(control.CompositeRoute{Src: r.Src, Dst: r.Dst, Via: r.Via},
		srcPort, dstPort, payload)
}

// OnReceive registers a handler for application packets addressed to the
// given inner UDP port arriving at a site, whichever route carried them.
func (m *Mesh) OnReceive(site string, dstPort uint16, fn func(Delivery)) {
	m.mesh.AddSink(site, deliverySink(m.Now, dstPort, fn))
}

// Paths returns the live per-path view of one deployed segment: the
// paths carrying traffic from site toward peer. Establish must have
// succeeded and the pair must exist.
func (m *Mesh) Paths(site, peer string) ([]PathInfo, error) {
	sender := m.mesh.Member(site, peer)
	recv := m.mesh.Member(peer, site)
	if sender == nil || recv == nil {
		return nil, fmt.Errorf("tango: no deployed pair %s:%s", site, peer)
	}
	return pathInfos(sender, recv.Monitor), nil
}

// RelayStats reports a site's relay activity: packets re-encapsulated
// onto a next segment and packets dropped by the TTL loop guard.
func (m *Mesh) RelayStats(site string) (forwarded, ttlExpired uint64) {
	r := m.mesh.Relay(site)
	if r == nil {
		return 0, 0
	}
	return r.Stats.Forwarded, r.Stats.TTLExpired
}

// InjectRouteShift schedules an intra-provider routing change on the
// provider's trunk toward the named site: after `in` of virtual time the
// affected paths settle delta higher for dur, then revert.
func (m *Mesh) InjectRouteShift(site, provider string, in, dur, delta time.Duration) error {
	line := m.scenario.Trunk[site][provider]
	if line == nil {
		return fmt.Errorf("tango: no %s trunk toward %s", provider, site)
	}
	(&events.RouteShift{
		Line:     line,
		At:       m.Now() + in,
		Duration: dur,
		Delta:    delta,
	}).Schedule(line.Eng())
	return nil
}
