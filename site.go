package tango

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"tango/internal/control"
	"tango/internal/core"
	"tango/internal/packet"
)

// Site is one cooperating edge network in an established Lab.
type Site struct {
	lab  *Lab
	site *core.Site
	// sendBuf is reused across Send calls: the core only borrows the
	// serialized bytes (the switch copies them into a pooled buffer).
	sendBuf *packet.SerializeBuffer
}

// Name returns "ny" or "la".
func (s *Site) Name() string { return s.site.Spec.Name }

// peerSite resolves the public wrapper for the site's peer.
func (s *Site) peer() *Site {
	if s.site == s.lab.pair.A {
		return s.lab.la
	}
	return s.lab.ny
}

// PathInfo describes one of a site's outgoing wide-area paths with its
// live measurements (taken at the peer, which is where one-way delay is
// observed). Delay values are in the peer's clock domain: differences
// between paths are exact, absolute values carry the constant clock
// offset.
type PathInfo struct {
	// ID is the tunnel path identifier (1-based discovery order; 1 is
	// the BGP default path).
	ID uint8
	// Provider is the transit AS delivering into the peer's POP.
	Provider string
	// ASPath is the interdomain path as observed during discovery.
	ASPath string
	// MeanOWDMs / MinOWDMs / StdOWDMs aggregate the raw one-way delays.
	MeanOWDMs, MinOWDMs, StdOWDMs float64
	// JitterMs is the mean 1-second rolling-window standard deviation
	// (the paper's jitter metric); offset-free.
	JitterMs float64
	// Samples is the number of measured packets.
	Samples uint64
	// LossRate is lost/(lost+received) from tunnel sequence numbers.
	LossRate float64
	// Current reports whether the controller is steering data traffic
	// onto this path.
	Current bool
}

// Paths returns the site's outgoing paths in discovery order with live
// stats. Paths without measurements yet have zero Samples.
func (s *Site) Paths() []PathInfo {
	return pathInfos(s.site, s.peer().site.Monitor)
}

// pathInfos assembles the public view of one direction's paths: the
// sender's discovered paths annotated with the receiving monitor's
// measurements.
func pathInfos(sender *core.Site, peerMon *control.Monitor) []PathInfo {
	cur := sender.Controller.Current()
	out := make([]PathInfo, 0, len(sender.OutPaths))
	for i, dp := range sender.OutPaths {
		id := uint8(i + 1)
		info := PathInfo{
			ID:       id,
			Provider: dp.ProviderName,
			ASPath:   dp.Path.String(),
			Current:  id == cur,
		}
		if pm := peerMon.Path(id); pm != nil {
			info.MeanOWDMs = pm.OWD.Mean()
			info.MinOWDMs = pm.OWD.Min()
			info.StdOWDMs = pm.OWD.Std()
			info.JitterMs = pm.Jitter.MeanStd()
			info.Samples = pm.OWD.N()
			info.LossRate = pm.Seq.LossRate()
		}
		out = append(out, info)
	}
	return out
}

// CurrentPath returns the provider label of the path currently carrying
// this site's data traffic.
func (s *Site) CurrentPath() string {
	return s.site.PathName(s.site.Controller.Current())
}

// Switches returns how many times the controller has moved traffic.
func (s *Site) Switches() uint64 { return s.site.Controller.Stats.Switches }

// OnPathSwitch registers a callback invoked when the controller moves
// traffic (at is virtual time).
func (s *Site) OnPathSwitch(fn func(at time.Duration, from, to string)) {
	s.site.Controller.OnSwitch = func(at time.Duration, from, to uint8) {
		fn(at, s.site.PathName(from), s.site.PathName(to))
	}
}

// HostAddr returns the idx-th address in the site's host prefix; use it
// to address application traffic.
func (s *Site) HostAddr(idx uint64) netip.Addr {
	a, err := s.site.Spec.HostPrefix.Host(idx)
	if err != nil {
		panic(err)
	}
	return a
}

// Send transmits an application payload to the peer site as a UDP packet
// between the given host addresses and ports. The border switch tunnels
// it over the controller's current path.
func (s *Site) Send(srcHost, dstHost netip.Addr, srcPort, dstPort uint16, payload []byte) error {
	if s.sendBuf == nil {
		s.sendBuf = packet.NewSerializeBuffer()
	}
	pay := packet.Payload(payload)
	udp := &packet.UDP{SrcPort: srcPort, DstPort: dstPort}
	udp.SetNetworkForChecksum(srcHost, dstHost)
	ip := &packet.IPv6{NextHeader: packet.ProtoUDP, HopLimit: 64, Src: srcHost, Dst: dstHost}
	if err := packet.SerializeLayers(s.sendBuf, ip, udp, &pay); err != nil {
		return err
	}
	s.site.Send(s.sendBuf.Bytes())
	return nil
}

// Delivery is an application packet received from the peer.
type Delivery struct {
	At               time.Duration // virtual arrival time
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Payload          []byte
}

// OnReceive registers a handler for application packets addressed to the
// given inner UDP destination port.
func (s *Site) OnReceive(dstPort uint16, fn func(Delivery)) {
	s.site.AddSink(deliverySink(s.lab.Now, dstPort, fn))
}

// deliverySink builds a sink claiming inner UDP packets on dstPort and
// handing them to fn as parsed Deliveries.
func deliverySink(now func() time.Duration, dstPort uint16, fn func(Delivery)) func([]byte) bool {
	return func(inner []byte) bool {
		if len(inner) < 48 || inner[0]>>4 != 6 {
			return false
		}
		if inner[6] != packet.ProtoUDP {
			return false
		}
		dp := binary.BigEndian.Uint16(inner[42:44])
		if dp != dstPort {
			return false
		}
		var ip packet.IPv6
		var udp packet.UDP
		if ip.DecodeFromBytes(inner) != nil || udp.DecodeFromBytes(ip.LayerPayload()) != nil {
			return false
		}
		// The inner slice views a pooled packet buffer that is recycled
		// after the sink chain returns; Delivery is a public value users
		// retain, so its payload must be an owned copy.
		fn(Delivery{
			At:      now(),
			Src:     ip.Src,
			Dst:     ip.Dst,
			SrcPort: udp.SrcPort,
			DstPort: udp.DstPort,
			Payload: append([]byte(nil), udp.LayerPayload()...),
		})
		return true
	}
}

// Stats is a snapshot of the site's border-switch counters.
type Stats struct {
	Encapped, Decapped uint64
	ReportsSent        uint64
	ProbesSent         uint64
}

// Stats returns the site's data-plane counters.
func (s *Site) Stats() Stats {
	st := Stats{
		Encapped:    s.site.Switch.Stats.Encapped,
		Decapped:    s.site.Switch.Stats.Decapped,
		ReportsSent: s.site.Switch.Stats.ReportsSent,
	}
	if s.site.Prober != nil {
		st.ProbesSent = s.site.Prober.Sent
	}
	return st
}

// String summarizes the site.
func (s *Site) String() string {
	return fmt.Sprintf("site %s: %d paths, data on %s", s.Name(), len(s.site.OutPaths), s.CurrentPath())
}
