package tango

import (
	"fmt"
	"sort"

	"tango/internal/dataplane"
	"tango/internal/te"
)

// SteeringClasses is the number of flow classes the weighted steering
// data plane distinguishes. A flow's class is the inner packet's IPv6
// traffic-class byte (IPv4 TOS), so applications choose a class by
// stamping 0..SteeringClasses-1 there.
const SteeringClasses = 8

// SteeringDemand declares one steerable traffic aggregate for
// OptimizeSteering: RateBps of class traffic offered from one deployed
// site toward another. The pair must have deployed Tango directly
// (relayed routes are not steerable aggregates).
type SteeringDemand struct {
	Src, Dst string
	Class    uint8
	RateBps  float64
}

// SteeringPlacement reports how OptimizeSteering split one demand:
// Weights maps provider name to the fraction of the demand steered over
// that provider's path (multiples of 1/8, summing to 1; providers with
// zero weight are omitted).
type SteeringPlacement struct {
	Demand  SteeringDemand
	Weights map[string]float64
}

// SetTrunkCapacity declares the capacity, in bits per virtual second, of
// both directions of the named provider's trunk serving a site. Declared
// capacities have two effects: the simulated lines model serialization
// delay (an oversubscribed trunk builds queueing delay, never loss), and
// OptimizeSteering's placement counts load against them. Undeclared
// trunks stay uncapacitated and free.
func (m *Mesh) SetTrunkCapacity(site, provider string, bps float64) error {
	if m.buildErr != nil {
		return m.buildErr
	}
	if bps <= 0 {
		return fmt.Errorf("tango: trunk capacity must be positive, got %g", bps)
	}
	down := m.scenario.Trunk[site][provider]
	up := m.scenario.Uplink[site][provider]
	if down == nil || up == nil {
		return fmt.Errorf("tango: no %s trunk serving %s", provider, site)
	}
	down.SetCapacity(bps)
	up.SetCapacity(bps)
	if m.trunkCap == nil {
		m.trunkCap = map[[2]string]float64{}
	}
	m.trunkCap[[2]string{site, provider}] = bps
	return nil
}

// OptimizeSteering replaces the per-pair greedy path choice with a
// capacity-aware weighted placement: it solves for per-class path
// weights that minimize the maximum utilization of the declared trunk
// capacities (Link-Guided Local Search, a pure function of the demands
// and seed) and installs them on every demand's border switch. From
// then on, classified host traffic from those sites hashes flow-wise
// onto the weighted path set — each flow sticks to one path, the flow
// population spreads in the installed proportions — while unclassified
// traffic and classes without weights keep the controller's single-path
// choice. It returns the placement's predicted maximum link utilization
// (a value above 1 means even the best split oversubscribes some trunk)
// together with the per-demand weights, in input order.
//
// Call after Establish, and again whenever demands change; repeated
// calls reuse the installed selectors and overwrite their weights.
func (m *Mesh) OptimizeSteering(seed int64, demands []SteeringDemand) (float64, []SteeringPlacement, error) {
	if m.mesh == nil {
		return 0, nil, fmt.Errorf("tango: OptimizeSteering before Establish")
	}
	if len(demands) == 0 {
		return 0, nil, fmt.Errorf("tango: OptimizeSteering needs at least one demand")
	}

	// The link table covers every trunk direction of every site, in
	// deterministic (site, provider, direction) order; capacities come
	// from SetTrunkCapacity declarations, everything else is free.
	sites := m.mesh.Sites()
	idx := map[[3]string]int{}
	var links []te.Link
	for _, site := range sites {
		provs := make([]string, 0, len(m.scenario.Trunk[site]))
		for p := range m.scenario.Trunk[site] {
			provs = append(provs, p)
		}
		sort.Strings(provs)
		for _, p := range provs {
			for _, dir := range [2]string{"up", "down"} {
				idx[[3]string{site, p, dir}] = len(links)
				links = append(links, te.Link{
					Name:        dir + "/" + site + "/" + p,
					CapacityBps: m.trunkCap[[2]string{site, p}],
				})
			}
		}
	}

	prob := &te.Problem{Links: links}
	for _, d := range demands {
		if d.Class >= SteeringClasses {
			return 0, nil, fmt.Errorf("tango: demand %s->%s class %d out of range [0,%d)", d.Src, d.Dst, d.Class, SteeringClasses)
		}
		sender := m.mesh.Member(d.Src, d.Dst)
		if sender == nil {
			return 0, nil, fmt.Errorf("tango: no deployed pair %s:%s", d.Src, d.Dst)
		}
		if len(sender.OutPaths) == 0 {
			return 0, nil, fmt.Errorf("tango: pair %s:%s has no discovered paths", d.Src, d.Dst)
		}
		paths := make([][]int, len(sender.OutPaths))
		for i := range sender.OutPaths {
			prov := sender.PathName(uint8(i + 1))
			var p []int
			if li, ok := idx[[3]string{d.Src, prov, "up"}]; ok {
				p = append(p, li)
			}
			if li, ok := idx[[3]string{d.Dst, prov, "down"}]; ok {
				p = append(p, li)
			}
			paths[i] = p
		}
		prob.Demands = append(prob.Demands, te.Demand{
			Name:    fmt.Sprintf("%s:%s/%d", d.Src, d.Dst, d.Class),
			RateBps: d.RateBps,
			Paths:   paths,
		})
	}

	solver := te.NewSolver(prob, seed)
	maxUtil := solver.Solve()

	if m.steer == nil {
		m.steer = map[[2]string]*dataplane.ClassSelector{}
	}
	placements := make([]SteeringPlacement, len(demands))
	var counts []int
	for di, d := range demands {
		sender := m.mesh.Member(d.Src, d.Dst)
		key := [2]string{d.Src, d.Dst}
		cs, ok := m.steer[key]
		if !ok {
			cs = dataplane.NewClassSelector(sender.Switch, SteeringClasses)
			sender.Switch.SetSelector(cs.Select)
			m.steer[key] = cs
		}
		ids := make([]uint8, len(sender.OutPaths))
		for i := range ids {
			ids[i] = uint8(i + 1)
		}
		counts = solver.Counts(di, counts)
		cs.SetWeights(int(d.Class), ids, counts)

		ws := map[string]float64{}
		for i, w := range solver.Weights(di) {
			if w > 0 {
				ws[sender.PathName(uint8(i+1))] += w
			}
		}
		placements[di] = SteeringPlacement{Demand: d, Weights: ws}
	}
	return maxUtil, placements, nil
}
