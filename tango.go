// Package tango is a library implementation of "It Takes Two to Tango:
// Cooperative Edge-to-Edge Routing" (Birge-Lee, Apostolaki, Rexford,
// HotNets '22): pairs of edge networks cooperate to expose wide-area path
// diversity with BGP communities, measure one-way delay by piggybacking
// timestamps on data packets at their border switches, and steer traffic
// per packet over the best exposed path — no support needed from end
// hosts or the Internet core.
//
// Because the public Internet is not available to a library, tango ships
// a faithful substrate: a deterministic packet-level network simulator, a
// from-scratch BGP-4 control plane with operator action communities, and
// an eBPF-equivalent data plane operating on real packet bytes. The
// two-site entry point is the Lab: the paper's two-datacenter Vultr
// deployment, ready for discovery, measurement, traffic, and incident
// injection.
//
//	lab := tango.NewLab(tango.Options{Seed: 1})
//	if err := lab.Establish(); err != nil { ... }
//	lab.Run(30 * time.Minute)
//	for _, p := range lab.NY().Paths() {
//		fmt.Printf("%s: %.2f ms\n", p.Provider, p.MeanOWDMs)
//	}
//
// NewMesh scales the same machinery to N sites (the paper's §6, "from
// Tango of 2 to Tango of N"): Tango deploys pairwise between adjacent
// sites and an overlay relay layer composes the pairs into end-to-end
// routes, so traffic can detour through an intermediate site when every
// direct wide-area path degrades.
//
//	mesh := tango.NewMesh(tango.MeshOptions{Seed: 1})
//	if err := mesh.Establish(); err != nil { ... }
//	mesh.Run(2 * time.Minute)
//	best, _ := mesh.BestRoute("ny", "la") // direct, or relayed via chi
package tango

import (
	"fmt"
	"time"

	"tango/internal/control"
	"tango/internal/core"
	"tango/internal/events"
	"tango/internal/obs"
	"tango/internal/simnet"
	"tango/internal/topo"
)

// Policy selects the controller's path-selection strategy.
type Policy int

// Policies.
const (
	// PolicyMinDelay tracks the lowest one-way delay with hysteresis
	// (the default).
	PolicyMinDelay Policy = iota
	// PolicyMinJitter prefers the calmest path within a small delay
	// budget — for interactive traffic.
	PolicyMinJitter
	// PolicyStaticDefault pins traffic to the BGP default path (the
	// "no Tango" baseline).
	PolicyStaticDefault
)

// Options configures a Lab.
type Options struct {
	// Seed drives every random process; runs with equal seeds are
	// bit-for-bit reproducible.
	Seed int64
	// ProbeInterval is the per-path measurement cadence (default the
	// paper's 10 ms).
	ProbeInterval time.Duration
	// DecideEvery is the controller cadence (default 1 s; 0 keeps the
	// controllers off so traffic stays on the BGP default).
	DecideEvery time.Duration
	// PolicyNY / PolicyLA select each site's strategy.
	PolicyNY, PolicyLA Policy
	// RecordBucket, when positive, records per-path OWD time series at
	// this aggregation for later export.
	RecordBucket time.Duration
	// ClockOffsetNY / ClockOffsetLA skew the two servers' clocks
	// (defaults: +1.7 s and -0.9 s, deliberately unsynchronised).
	ClockOffsetNY, ClockOffsetLA time.Duration
	// AuthKey, when non-empty, enables authenticated telemetry: both
	// border switches sign Tango datagrams and drop unverified ones.
	AuthKey []byte
}

// Lab is the paper's deployment: two cooperating edge servers in Vultr's
// NY and LA datacenters connected across five transit providers. It is
// the two-site special case of the machinery behind NewMesh.
type Lab struct {
	scenario *topo.Scenario
	pair     *core.Pair
	opts     Options
	ny, la   *Site
	buildErr error
}

// NewLab builds the simulated deployment (BGP sessions established, host
// prefixes announced) without running Tango discovery yet.
func NewLab(opts Options) *Lab {
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = 10 * time.Millisecond
	}
	if opts.DecideEvery == 0 {
		opts.DecideEvery = time.Second
	}
	s, err := topo.NewVultrScenario(topo.ScenarioConfig{
		Seed:          opts.Seed,
		ClockOffsetNY: opts.ClockOffsetNY,
		ClockOffsetLA: opts.ClockOffsetLA,
	})
	if err != nil {
		// The Vultr config is fixed, so this cannot happen today; carry
		// it to Establish rather than panic.
		return &Lab{opts: opts, buildErr: err}
	}
	s.Run(5 * time.Minute)
	l := &Lab{scenario: s, opts: opts}
	return l
}

func mkPolicy(p Policy) control.Policy {
	switch p {
	case PolicyMinJitter:
		return &control.MinJitter{MaxOWDPenaltyMs: 2}
	case PolicyStaticDefault:
		return &control.Static{ID: 1}
	default:
		return &control.MinOWD{HysteresisMs: 0.5, MinDwell: 2 * time.Second, StaleAfter: 10 * time.Second}
	}
}

// Establish runs the paper's setup end to end in virtual time: iterative
// path discovery in both directions, one pinned prefix announced per
// exposed path, tunnels provisioned, probing and the measurement feedback
// loop started. It returns an error if BGP fails to expose any path.
func (l *Lab) Establish() error {
	if l.buildErr != nil {
		return l.buildErr
	}
	p := core.VultrPair(l.scenario, core.PairConfig{
		ProbeInterval: l.opts.ProbeInterval,
		DecideEvery:   l.opts.DecideEvery,
		PolicyA:       mkPolicy(l.opts.PolicyNY),
		PolicyB:       mkPolicy(l.opts.PolicyLA),
		RecordBucket:  l.opts.RecordBucket,
		AuthKey:       l.opts.AuthKey,
	})
	p.Establish()
	if !p.RunUntilReady(2 * time.Hour) {
		return fmt.Errorf("tango: establishment did not complete")
	}
	if len(p.A.OutPaths) == 0 || len(p.B.OutPaths) == 0 {
		return fmt.Errorf("tango: no wide-area paths discovered")
	}
	l.pair = p
	l.ny = &Site{lab: l, site: p.A}
	l.la = &Site{lab: l, site: p.B}
	return nil
}

// Instrument registers the deployment's metrics in reg — both sites'
// switches, monitors and controllers plus per-provider trunk-line drop
// counters — and journals structured events (path switches, queue drops)
// to j. Call after Establish. Either argument may be used alone by
// passing the other as a fresh value; both are typically served with
// obs.Handler.
func (l *Lab) Instrument(reg *obs.Registry, j *obs.Journal) error {
	if l.pair == nil {
		return fmt.Errorf("tango: Instrument before Establish")
	}
	l.pair.Instrument(reg, j)
	for provider, line := range l.scenario.TrunkToLA {
		name := provider + ":NY->LA"
		line.Instrument(name, reg.Counter("tango_line_drops_total",
			"Packets refused at line admission (down or queue overflow).",
			obs.L("line", name)), j)
	}
	for provider, line := range l.scenario.TrunkToNY {
		name := provider + ":LA->NY"
		line.Instrument(name, reg.Counter("tango_line_drops_total",
			"Packets refused at line admission (down or queue overflow).",
			obs.L("line", name)), j)
	}
	return nil
}

// Run advances the deployment by d of virtual time.
func (l *Lab) Run(d time.Duration) { l.scenario.Run(d) }

// Now returns the current virtual time.
func (l *Lab) Now() time.Duration { return l.scenario.B.W.Now() }

// NY returns the New York site. Establish must have succeeded.
func (l *Lab) NY() *Site { return l.ny }

// LA returns the Los Angeles site.
func (l *Lab) LA() *Site { return l.la }

// Direction identifies one traffic direction between the sites.
type Direction int

// Directions.
const (
	NYtoLA Direction = iota
	LAtoNY
)

func (d Direction) String() string {
	if d == NYtoLA {
		return "NY->LA"
	}
	return "LA->NY"
}

// trunk returns the named provider's trunk line for the direction.
func (l *Lab) trunk(provider string, dir Direction) (*simnet.Line, error) {
	var m map[string]*simnet.Line
	if dir == NYtoLA {
		m = l.scenario.TrunkToLA
	} else {
		m = l.scenario.TrunkToNY
	}
	line, ok := m[provider]
	if !ok {
		return nil, fmt.Errorf("tango: no %s trunk for %v", provider, dir)
	}
	return line, nil
}

// InjectRouteShift schedules an intra-provider routing change (the
// Figure 4 middle incident): after `in` of virtual time the provider's
// path in the given direction settles delta higher for dur, then reverts.
func (l *Lab) InjectRouteShift(provider string, dir Direction, in, dur, delta time.Duration) error {
	line, err := l.trunk(provider, dir)
	if err != nil {
		return err
	}
	(&events.RouteShift{
		Line:     line,
		At:       l.Now() + in,
		Duration: dur,
		Delta:    delta,
	}).Schedule(line.Eng())
	return nil
}

// InjectInstability schedules a Figure 4 (right) style degradation window
// with latency spikes up to peak above the path's floor.
func (l *Lab) InjectInstability(provider string, dir Direction, in, dur time.Duration, spikeProb float64, peakExtra time.Duration) error {
	line, err := l.trunk(provider, dir)
	if err != nil {
		return err
	}
	(&events.Instability{
		Line:           line,
		At:             l.Now() + in,
		Duration:       dur,
		SpikeProb:      spikeProb,
		SpikeMean:      peakExtra / 3,
		SpikeCap:       peakExtra,
		MinorExtraMean: time.Millisecond,
		MinorExtraStd:  1500 * time.Microsecond,
	}).Schedule(line.Eng())
	return nil
}

// InjectLossBurst raises the provider's loss rate in one direction for a
// window.
func (l *Lab) InjectLossBurst(provider string, dir Direction, in, dur time.Duration, loss float64) error {
	line, err := l.trunk(provider, dir)
	if err != nil {
		return err
	}
	(&events.LossBurst{Line: line, At: l.Now() + in, Duration: dur, Loss: loss}).Schedule(line.Eng())
	return nil
}
