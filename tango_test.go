package tango

import (
	"testing"
	"time"
)

func newEstablishedLab(t *testing.T, opts Options) *Lab {
	t.Helper()
	l := NewLab(opts)
	if err := l.Establish(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLabEstablishAndPaths(t *testing.T) {
	l := newEstablishedLab(t, Options{Seed: 1})
	l.Run(time.Minute)

	ny := l.NY()
	la := l.LA()
	if ny.Name() != "ny" || la.Name() != "la" {
		t.Fatalf("names: %s/%s", ny.Name(), la.Name())
	}
	ps := ny.Paths()
	if len(ps) != 4 {
		t.Fatalf("NY paths = %d", len(ps))
	}
	want := []string{"NTT", "Telia", "GTT", "Level3"}
	for i, p := range ps {
		if p.Provider != want[i] {
			t.Fatalf("paths = %+v", ps)
		}
		if p.Samples == 0 {
			t.Fatalf("path %s has no measurements", p.Provider)
		}
		if p.ASPath == "" {
			t.Fatal("empty AS path")
		}
	}
	laWant := []string{"NTT", "Telia", "GTT", "Cogent"}
	for i, p := range la.Paths() {
		if p.Provider != laWant[i] {
			t.Fatalf("LA paths = %+v", la.Paths())
		}
	}
	// Exactly one current path per site.
	cur := 0
	for _, p := range ps {
		if p.Current {
			cur++
		}
	}
	if cur != 1 {
		t.Fatalf("current paths = %d", cur)
	}
	if ny.String() == "" {
		t.Fatal("empty String")
	}
}

func TestLabControllerConverges(t *testing.T) {
	l := newEstablishedLab(t, Options{Seed: 2})
	var moves []string
	l.NY().OnPathSwitch(func(at time.Duration, from, to string) {
		moves = append(moves, from+"->"+to)
	})
	l.Run(3 * time.Minute)
	if l.NY().CurrentPath() != "GTT" {
		t.Fatalf("NY on %s, want GTT", l.NY().CurrentPath())
	}
	if l.NY().Switches() == 0 || len(moves) == 0 {
		t.Fatal("no switches recorded")
	}
}

func TestLabStaticPolicyStaysOnDefault(t *testing.T) {
	l := newEstablishedLab(t, Options{Seed: 3, PolicyNY: PolicyStaticDefault, PolicyLA: PolicyStaticDefault})
	l.Run(2 * time.Minute)
	if l.NY().CurrentPath() != "NTT" {
		t.Fatalf("static policy moved to %s", l.NY().CurrentPath())
	}
}

func TestLabSendReceive(t *testing.T) {
	l := newEstablishedLab(t, Options{Seed: 4})
	var got []Delivery
	l.LA().OnReceive(9000, func(d Delivery) { got = append(got, d) })

	src := l.NY().HostAddr(1)
	dst := l.LA().HostAddr(1)
	if err := l.NY().Send(src, dst, 8000, 9000, []byte("hello LA")); err != nil {
		t.Fatal(err)
	}
	l.Run(time.Second)
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	d := got[0]
	if string(d.Payload) != "hello LA" || d.SrcPort != 8000 || d.Src != src || d.Dst != dst {
		t.Fatalf("delivery = %+v", d)
	}
	st := l.NY().Stats()
	if st.Encapped == 0 || st.ProbesSent == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLabInjectRouteShiftMovesTraffic(t *testing.T) {
	l := newEstablishedLab(t, Options{Seed: 5})
	l.Run(2 * time.Minute) // settle on GTT
	if l.NY().CurrentPath() != "GTT" {
		t.Fatalf("pre-event path %s", l.NY().CurrentPath())
	}
	if err := l.InjectRouteShift("GTT", NYtoLA, time.Minute, 10*time.Minute, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	l.Run(5 * time.Minute) // into the event
	if l.NY().CurrentPath() == "GTT" {
		t.Fatal("controller did not leave GTT during +5ms shift")
	}
	l.Run(12 * time.Minute) // event over
	if l.NY().CurrentPath() != "GTT" {
		t.Fatalf("controller did not return to GTT: on %s", l.NY().CurrentPath())
	}
}

func TestLabInjectErrors(t *testing.T) {
	l := newEstablishedLab(t, Options{Seed: 6})
	if err := l.InjectRouteShift("Nonexistent", NYtoLA, 0, time.Minute, time.Millisecond); err == nil {
		t.Fatal("unknown provider accepted")
	}
	if err := l.InjectInstability("GTT", LAtoNY, 0, time.Minute, 0.1, 40*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := l.InjectLossBurst("Telia", NYtoLA, 0, time.Minute, 0.2); err != nil {
		t.Fatal(err)
	}
	if NYtoLA.String() == LAtoNY.String() {
		t.Fatal("direction strings")
	}
}

func TestLabDeterminism(t *testing.T) {
	run := func() (string, float64) {
		l := newEstablishedLab(t, Options{Seed: 77})
		l.Run(2 * time.Minute)
		ps := l.NY().Paths()
		return l.NY().CurrentPath(), ps[2].MeanOWDMs
	}
	p1, m1 := run()
	p2, m2 := run()
	if p1 != p2 || m1 != m2 {
		t.Fatalf("runs diverged: (%s, %v) vs (%s, %v)", p1, m1, p2, m2)
	}
}

func TestLabAuthenticatedTelemetry(t *testing.T) {
	l := newEstablishedLab(t, Options{Seed: 8, AuthKey: []byte("pair-shared-key")})
	l.Run(2 * time.Minute)
	// Probes are signed and verified: measurements flow and the
	// controller still converges on GTT.
	ps := l.NY().Paths()
	for _, p := range ps {
		if p.Samples == 0 {
			t.Fatalf("no measurements on %s with auth enabled", p.Provider)
		}
	}
	if l.NY().CurrentPath() != "GTT" {
		t.Fatalf("controller on %s with auth enabled", l.NY().CurrentPath())
	}
}
